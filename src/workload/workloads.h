// Workload generators, one per application scenario named in the paper.
//
// Each generator builds a relation whose declared specialization matches the
// scenario, then drives its LogicalClock so transaction times land exactly
// where the scenario requires:
//
//   Process monitoring (Section 3.1, retroactive / delayed retroactive):
//     periodically sampled sensor values stored after a transmission delay.
//   Degenerate monitoring (Section 3.1, degenerate):
//     no delay within the granularity; the asynchronous recording method.
//   Direct-deposit payroll (Section 3.1, predictive / early strongly
//     predictively bounded): checks valid on the 1st, tape sent 3..7 days
//     ahead.
//   Employee assignments (Sections 3.1/3.3/3.4, retroactively bounded,
//     weekly intervals, per-surrogate contiguity).
//   Accounting (Section 3.1, strongly bounded): current-month entries with
//     bounded corrections.
//   Order entry (Section 3.1, predictively bounded): pending orders at most
//     30 days out, plus filled past orders.
//   Archaeology (Sections 3.2/3.4, non-increasing): excavation uncovers
//     progressively earlier strata.
//   General (baseline): unrestricted offsets.
#ifndef TEMPSPEC_WORKLOAD_WORKLOADS_H_
#define TEMPSPEC_WORKLOAD_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "relation/temporal_relation.h"
#include "timex/clock.h"
#include "util/random.h"
#include "util/result.h"

namespace tempspec {

/// \brief A relation plus the logical clock that drives it.
struct ScenarioRelation {
  std::unique_ptr<TemporalRelation> relation;
  std::shared_ptr<LogicalClock> clock;

  TemporalRelation* operator->() { return relation.get(); }
  TemporalRelation& operator*() { return *relation; }
};

/// \brief Common generator knobs.
struct WorkloadConfig {
  size_t num_objects = 16;      // sensors / employees / accounts / squares
  size_t ops_per_object = 64;   // samples / checks / assignments per object
  uint64_t seed = 42;
  /// Storage directory ("" = in-memory) and snapshot interval are forwarded.
  std::string storage_directory;
  size_t snapshot_interval = 0;
  /// When set, the relation is created WITHOUT its scenario's declared
  /// specializations (baseline mode: same data, no semantics to exploit).
  bool declare_specializations = true;
};

// Every Make* returns an opened relation with the scenario's schema and (per
// config) declared specializations; every Generate* fills it. Generators are
// deterministic under the same config.

/// \brief Temperature sampling with transmission delay in
/// [min_delay, max_delay]; declared delayed retroactive(min_delay) and
/// retroactively bounded(max_delay), sampled every `sample_every`.
Result<ScenarioRelation> MakeProcessMonitoring(const WorkloadConfig& config,
                                               Duration min_delay,
                                               Duration max_delay,
                                               Duration sample_every);
Status GenerateProcessMonitoring(const WorkloadConfig& config, Duration min_delay,
                                 Duration max_delay, Duration sample_every,
                                 ScenarioRelation* scenario);

/// \brief Zero-delay sampling: degenerate (+ strict temporal regularity when
/// jitterless).
Result<ScenarioRelation> MakeDegenerateMonitoring(const WorkloadConfig& config,
                                                  Duration sample_every);
Status GenerateDegenerateMonitoring(const WorkloadConfig& config,
                                    Duration sample_every,
                                    ScenarioRelation* scenario);

/// \brief Direct-deposit payroll: early strongly predictively bounded
/// (3..7 days).
Result<ScenarioRelation> MakePayroll(const WorkloadConfig& config);
Status GeneratePayroll(const WorkloadConfig& config, ScenarioRelation* scenario);

/// \brief Weekly project assignments (interval relation): vt_b-retroactively
/// bounded(1mo), strict valid interval regular (1 week), per-surrogate
/// contiguous.
Result<ScenarioRelation> MakeAssignments(const WorkloadConfig& config);
Status GenerateAssignments(const WorkloadConfig& config,
                           ScenarioRelation* scenario);

/// \brief Accounting entries: strongly bounded (5 days back, 2 days ahead).
Result<ScenarioRelation> MakeAccounting(const WorkloadConfig& config);
Status GenerateAccounting(const WorkloadConfig& config, ScenarioRelation* scenario);

/// \brief Order database: predictively bounded (30 days).
Result<ScenarioRelation> MakeOrders(const WorkloadConfig& config);
Status GenerateOrders(const WorkloadConfig& config, ScenarioRelation* scenario);

/// \brief Archaeology (interval relation): globally non-increasing strata.
Result<ScenarioRelation> MakeArchaeology(const WorkloadConfig& config);
Status GenerateArchaeology(const WorkloadConfig& config, ScenarioRelation* scenario);

/// \brief Unrestricted baseline: offsets uniform in [-spread, +spread].
Result<ScenarioRelation> MakeGeneral(const WorkloadConfig& config);
Status GenerateGeneral(const WorkloadConfig& config, Duration spread,
                       ScenarioRelation* scenario);

// ---------------------------------------------------------------------------
// Unified scenario surface: the paper's seven applications (plus the general
// baseline) addressable by enum, planned as data, and renderable as a
// deterministic query_lang statement stream. The traffic simulator
// (tools/tempspec_simulate) and the seeded-determinism property test are
// built on this; the Make*/Generate* pairs above remain as the scenario-
// specific entry points with extra knobs.
// ---------------------------------------------------------------------------

enum class Scenario {
  kProcessMonitoring,   // plant_temperatures: delayed retroactive + r-bounded
  kDegenerateMonitoring,// reactor_samples:    degenerate, strictly regular
  kPayroll,             // payroll_deposits:   early strongly pred. bounded
  kAssignments,         // assignments:        interval, vt_b-predictive
  kAccounting,          // ledger:             strongly bounded (5d back, 2d)
  kOrders,              // orders:             predictively bounded (30d)
  kArchaeology,         // strata:             interval, non-increasing
  kGeneral,             // general_events:     unrestricted baseline
};

/// \brief The seven paper applications, in the paper's order (kGeneral is
/// the baseline, not one of the seven).
const std::vector<Scenario>& SevenScenarios();

/// \brief All scenarios including the general baseline.
const std::vector<Scenario>& AllScenarios();

/// \brief The scenario's relation name ("plant_temperatures", ...).
const char* ScenarioRelationName(Scenario scenario);

/// \brief The paper application the scenario models ("chemical-plant
/// monitoring", "payroll", ...).
const char* ScenarioApplication(Scenario scenario);

/// \brief One planned mutation: the transaction-time instant at which the
/// element is stored, its valid time, and its payload. The plan is pure
/// data — Apply-ing it to a relation and rendering it as statements must
/// agree element for element.
struct PlannedInsert {
  TimePoint tt;
  ValidTime valid;
  ObjectSurrogate object;
  Tuple attributes;
};

/// \brief Plans a scenario's insert stream without touching any relation.
/// Deterministic: the same (scenario, config.seed, sizes) yields the
/// identical vector. Returned in transaction-time order (stable), exactly
/// the order Apply and ScenarioStatements use.
Result<std::vector<PlannedInsert>> PlanScenario(Scenario scenario,
                                                const WorkloadConfig& config);

/// \brief Opens the scenario's relation (schema + declared specializations
/// per config).
Result<ScenarioRelation> MakeScenario(Scenario scenario,
                                      const WorkloadConfig& config);

/// \brief Plans and applies the scenario's stream to an opened relation.
Status GenerateScenario(Scenario scenario, const WorkloadConfig& config,
                        ScenarioRelation* scenario_relation);

/// \brief Renders the scenario's planned stream as query_lang INSERT
/// statements, one per planned element, in apply order. Byte-deterministic
/// under the same config — the property the simulator's seeded mode and the
/// workload_determinism test gate on.
Result<std::vector<std::string>> ScenarioStatements(Scenario scenario,
                                                    const WorkloadConfig& config);

}  // namespace tempspec

#endif  // TEMPSPEC_WORKLOAD_WORKLOADS_H_
