// P1 — Morsel-driven parallel execution and zero-copy result sets.
//
// The engine's scaling claim: every execution strategy reduces to a morsel
// scan, so every strategy speeds up with cores, and results are zero-copy
// position views unless the caller materializes. Measured here on a
// 1M-element unrestricted relation (full scans are the worst case the
// specializations exist to avoid — and the case parallelism must rescue):
//
//   * full-scan valid-range queries, serial vs parallel at 1/2/4/all threads
//     (the ≥2x-at-4-cores acceptance gate, on byte-identical results);
//   * zero-copy TimesliceSet vs the materializing adapter;
//   * parallel rollback scans;
//   * morsel-size sweep (dispatch overhead vs load balance).
//
// Thread counts beyond the machine's cores only add scheduling noise; the
// sweep still records them so multi-core hosts show the scaling curve.
#include "bench_common.h"
#include "util/thread_pool.h"

using namespace tempspec;
using tempspec::bench::FullScanPlan;
using tempspec::bench::ReportQueryStats;
using tempspec::bench::Require;

namespace {

constexpr int64_t kElements = 1 << 20;  // 1M

struct BigRelation {
  ScenarioRelation scenario;
  TimePoint vt_min = TimePoint::Max();
  TimePoint vt_max = TimePoint::Min();
};

BigRelation& Big() {
  static BigRelation* big = [] {
    auto* b = new BigRelation();
    WorkloadConfig config;
    config.num_objects = 64;
    config.ops_per_object = static_cast<size_t>(kElements) / 64;
    b->scenario = Require(MakeGeneral(config));
    bench::Require(GenerateGeneral(config, Duration::Hours(2), &b->scenario));
    for (const Element& e : b->scenario->elements()) {
      if (e.valid.begin() < b->vt_min) b->vt_min = e.valid.begin();
      if (b->vt_max < e.valid.begin()) b->vt_max = e.valid.begin();
    }
    return b;
  }();
  return *big;
}

/// \brief A ~1/16th slice of the valid domain, varying per call.
TimeInterval QueryWindow(Random& rng) {
  BigRelation& big = Big();
  const int64_t span = big.vt_max.micros() - big.vt_min.micros();
  const int64_t width = span / 16;
  const int64_t lo = big.vt_min.micros() + rng.Uniform(0, span - width);
  return TimeInterval(TimePoint::FromMicros(lo),
                      TimePoint::FromMicros(lo + width));
}

void RunFullScan(benchmark::State& state, ThreadPool* pool) {
  BigRelation& big = Big();
  ExecutorOptions options;
  options.pool = pool;
  QueryExecutor exec(*big.scenario, options);
  Random rng(41);
  QueryStats stats;
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(rng);
    ResultSet set =
        exec.ValidRangeSetWith(FullScanPlan(), w.begin(), w.end(), &stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(pool ? pool->size() : 1));
  state.SetItemsProcessed(state.iterations() * kElements);
}

void BM_P1_FullScan_Serial(benchmark::State& state) {
  RunFullScan(state, nullptr);
}

void BM_P1_FullScan_Parallel(benchmark::State& state) {
  // range(0) threads; 0 = default (TEMPSPEC_THREADS / hardware concurrency).
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  RunFullScan(state, &pool);
}

void BM_P1_ParallelParity(benchmark::State& state) {
  // Not a timing benchmark: asserts byte-identical serial/parallel results
  // on the 1M relation so the speedup numbers above are comparing equals.
  BigRelation& big = Big();
  ThreadPool pool(4);
  QueryExecutor serial(*big.scenario, ExecutorOptions{.pool = nullptr});
  QueryExecutor parallel(*big.scenario, ExecutorOptions{.pool = &pool});
  Random rng(43);
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(rng);
    const ResultSet a =
        serial.ValidRangeSetWith(FullScanPlan(), w.begin(), w.end());
    const ResultSet b =
        parallel.ValidRangeSetWith(FullScanPlan(), w.begin(), w.end());
    if (a.positions() != b.positions()) {
      state.SkipWithError("parallel full scan diverged from serial");
      return;
    }
    benchmark::DoNotOptimize(b.size());
  }
}

void BM_P1_Timeslice_ZeroCopy(benchmark::State& state) {
  BigRelation& big = Big();
  ThreadPool pool;
  QueryExecutor exec(*big.scenario, ExecutorOptions{.pool = &pool});
  Random rng(47);
  QueryStats stats;
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(rng);
    ResultSet set = exec.ValidRangeSet(w.begin(), w.end(), &stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
}

void BM_P1_Timeslice_Materialized(benchmark::State& state) {
  BigRelation& big = Big();
  ThreadPool pool;
  QueryExecutor exec(*big.scenario, ExecutorOptions{.pool = &pool});
  Random rng(47);
  QueryStats stats;
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(rng);
    std::vector<Element> out = exec.ValidRange(w.begin(), w.end(), &stats);
    benchmark::DoNotOptimize(out.data());
  }
  ReportQueryStats(state, stats);
}

void BM_P1_Rollback_Scan(benchmark::State& state) {
  // range(0) threads over the 1M element array (no snapshot cache here —
  // this is the raw existence-interval scan).
  BigRelation& big = Big();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  QueryExecutor exec(*big.scenario,
                     ExecutorOptions{.pool = state.range(0) == 1 ? nullptr
                                                                 : &pool});
  const TimePoint last = big.scenario->LastTransactionTime();
  Random rng(53);
  QueryStats stats;
  for (auto _ : state) {
    const TimePoint tt =
        TimePoint::FromMicros(rng.Uniform(0, last.micros()));
    ResultSet set = exec.RollbackSet(tt, &stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}

void BM_P1_MorselSweep(benchmark::State& state) {
  BigRelation& big = Big();
  ThreadPool pool;
  ExecutorOptions options;
  options.pool = &pool;
  options.morsel_size = static_cast<size_t>(state.range(0));
  QueryExecutor exec(*big.scenario, options);
  Random rng(59);
  QueryStats stats;
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(rng);
    ResultSet set =
        exec.ValidRangeSetWith(FullScanPlan(), w.begin(), w.end(), &stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
  state.counters["morsel_size"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_P1_FullScan_Serial);
BENCHMARK(BM_P1_FullScan_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0);
BENCHMARK(BM_P1_ParallelParity)->Iterations(3);
BENCHMARK(BM_P1_Timeslice_ZeroCopy);
BENCHMARK(BM_P1_Timeslice_Materialized);
BENCHMARK(BM_P1_Rollback_Scan)->Arg(1)->Arg(4);
BENCHMARK(BM_P1_MorselSweep)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(65536);

TEMPSPEC_BENCH_MAIN("p1_parallel");
