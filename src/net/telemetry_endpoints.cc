#include "net/telemetry_endpoints.h"

#include <string>

#include "obs/build_info.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace tempspec {

void RegisterTelemetryEndpoints(NetServer* server) {
  server->AddHttpHandler(
      "/metrics", [](const HttpRequest&, NetServer::HttpResponse* response) {
        response->content_type = "text/plain; version=0.0.4; charset=utf-8";
        response->body =
            RenderPrometheusText(MetricsRegistry::Instance().Scrape()) +
            RenderLabeledPrometheusText(QueryLatencyFamily::Instance().Scrape());
      });
  server->AddHttpHandler(
      "/metrics/history",
      [](const HttpRequest&, NetServer::HttpResponse* response) {
        // The metrics time-series ring, one JSON sample per line (oldest
        // first). Empty until a sampler runs (tempspec_serve --history-ms).
        response->content_type = "application/json";
        response->body = MetricsHistory::Instance().RenderJsonl(0);
      });
  server->AddHttpHandler(
      "/debug/health",
      [](const HttpRequest&, NetServer::HttpResponse* response) {
        // Every declared SLO re-evaluated now, plus the labeled latency
        // series the verdicts were computed from.
        response->content_type = "application/json";
        response->body = SloRegistry::Instance().RenderHealthJson() + "\n";
      });
  server->AddHttpHandler(
      "/varz", [](const HttpRequest&, NetServer::HttpResponse* response) {
        response->content_type = "application/json";
        response->body = "{\"build\":" + BuildConfigJson() + ",\"metrics\":" +
                         MetricsRegistry::Instance().Scrape().ToJson() + "}\n";
      });
  server->AddHttpHandler(
      "/healthz", [](const HttpRequest&, NetServer::HttpResponse* response) {
        response->body = "ok\n";
      });
  server->AddHttpHandler(
      "/debug/events",
      [](const HttpRequest&, NetServer::HttpResponse* response) {
        // The flight-recorder ring, one JSON event per line (oldest first).
        response->body = FlightRecorder::Instance().ToJsonl();
      });
  server->AddHttpHandler(
      "/debug/traces",
      [](const HttpRequest&, NetServer::HttpResponse* response) {
        // The retained span ring, one JSON object per line (oldest first).
        std::string body;
        for (const RetainedTrace& t : RetainedTraces::Instance().Entries()) {
          body += "{\"trace_id\":" + std::to_string(t.trace_id) +
                  ",\"unix_micros\":" + std::to_string(t.unix_micros) +
                  ",\"trace\":" + t.json + "}\n";
        }
        response->body = std::move(body);
      });
  // The 404 body doubles as endpoint discovery.
  server->SetHttpFallback(
      [](const HttpRequest&, NetServer::HttpResponse* response) {
        response->body =
            "not found; try /metrics, /metrics/history, /varz, /healthz, "
            "/debug/events, /debug/traces, /debug/health\n";
      });
}

}  // namespace tempspec
