#include "spec/interval_spec.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::MakeIntervalElement;
using testing::T;

const Granularity kSec = Granularity::Second();

// --- Event characterizations applied to interval endpoints (Section 3.3) ---

TEST(AnchoredEventTest, EndRetroactiveStoresOnlyFinishedIntervals) {
  // "if an interval is stored as soon as it terminates, a designer may state
  // that the interval relation is vt_e-retroactive"
  AnchoredEventSpec spec(EventSpecialization::Retroactive(), ValidAnchor::kEnd);
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(100), T(10), T(50)), kSec));
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(100), T(10), T(100)), kSec));
  // Interval still open past storage time: vt_e > tt.
  EXPECT_NOT_OK(
      spec.CheckElement(MakeIntervalElement(T(100), T(10), T(150)), kSec));
}

TEST(AnchoredEventTest, BeginPredictiveRecordsBeforeCommencement) {
  AnchoredEventSpec spec(EventSpecialization::Predictive(), ValidAnchor::kBegin);
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(100), T(120), T(200)), kSec));
  EXPECT_NOT_OK(
      spec.CheckElement(MakeIntervalElement(T(100), T(90), T(200)), kSec));
}

TEST(AnchoredEventTest, BothAnchorsGivePlainName) {
  // "If the relation is, say, vt_b-retroactive and vt_e-retroactive, it may
  // simply be termed retroactive."
  AnchoredEventSpec spec(EventSpecialization::Retroactive(), ValidAnchor::kBoth);
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(100), T(10), T(50)), kSec));
  // End escapes: whole property fails.
  EXPECT_NOT_OK(
      spec.CheckElement(MakeIntervalElement(T(100), T(10), T(150)), kSec));
  // Begin escapes: fails too.
  EXPECT_NOT_OK(
      spec.CheckElement(MakeIntervalElement(T(100), T(101), T(102)), kSec));
}

TEST(AnchoredEventTest, EndDegenerateWithinGranularity) {
  // vt_e-degenerate: the interval is recorded the moment it ends.
  AnchoredEventSpec spec(EventSpecialization::Degenerate(), ValidAnchor::kEnd);
  EXPECT_OK(spec.CheckElement(
      MakeIntervalElement(T(100), T(10), T(100) + Duration::Micros(500)), kSec));
  EXPECT_NOT_OK(
      spec.CheckElement(MakeIntervalElement(T(100), T(10), T(99)), kSec));
}

TEST(AnchoredEventTest, RejectsEventElements) {
  AnchoredEventSpec spec(EventSpecialization::Retroactive(), ValidAnchor::kEnd);
  EXPECT_NOT_OK(
      spec.CheckElement(testing::MakeEventElement(T(100), T(50)), kSec));
}

TEST(AnchoredEventTest, DeletionAnchoredEndpointSpec) {
  AnchoredEventSpec spec(
      EventSpecialization::Retroactive().WithAnchor(TransactionAnchor::kDeletion),
      ValidAnchor::kEnd);
  // Current element: vacuous.
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(100), T(10), T(500)), kSec));
  Element e = MakeIntervalElement(T(100), T(10), T(500));
  e.tt_end = T(400);  // deleted before the interval ended
  EXPECT_NOT_OK(spec.CheckElement(e, kSec));
  e.tt_end = T(600);
  EXPECT_OK(spec.CheckElement(e, kSec));
}

// --- Interval regularity (Section 3.3) --------------------------------------

TEST(IntervalRegularityTest, ValidTimeIntervalRegular) {
  // Hires/terminations effective on the 1st or 15th: durations are multiples
  // of the company's half-month unit; here we use days for clarity.
  ASSERT_OK_AND_ASSIGN(
      auto spec, IntervalRegularitySpec::Make(
                     IntervalRegularityDimension::kValidTime, Duration::Days(7)));
  EXPECT_OK(spec.CheckElement(
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Days(7))));
  EXPECT_OK(spec.CheckElement(
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Days(21))));
  EXPECT_NOT_OK(spec.CheckElement(
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Days(10))));
}

TEST(IntervalRegularityTest, StrictRequiresExactlyOneUnit) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       IntervalRegularitySpec::Make(
                           IntervalRegularityDimension::kValidTime,
                           Duration::Weeks(1), /*strict=*/true));
  EXPECT_OK(spec.CheckElement(
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Weeks(1))));
  EXPECT_NOT_OK(spec.CheckElement(
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Weeks(2))));
  EXPECT_NOT_OK(spec.CheckElement(MakeIntervalElement(T(0), T(0), T(0))));
}

TEST(IntervalRegularityTest, TransactionTimeChecksExistenceInterval) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       IntervalRegularitySpec::Make(
                           IntervalRegularityDimension::kTransactionTime,
                           Duration::Hours(1)));
  // Current element (open existence interval): vacuous.
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(T(0), T(0), T(10))));
  Element closed = MakeIntervalElement(T(0), T(0), T(10));
  closed.tt_end = T(0) + Duration::Hours(3);
  EXPECT_OK(spec.CheckElement(closed));
  closed.tt_end = T(0) + Duration::Minutes(90);
  EXPECT_NOT_OK(spec.CheckElement(closed));
}

TEST(IntervalRegularityTest, TemporalChecksBothWithSameUnit) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       IntervalRegularitySpec::Make(
                           IntervalRegularityDimension::kTemporal,
                           Duration::Hours(1)));
  Element e = MakeIntervalElement(T(0), T(0), T(0) + Duration::Hours(2));
  e.tt_end = T(0) + Duration::Hours(5);  // different multiplier is fine
  EXPECT_OK(spec.CheckElement(e));
  e.tt_end = T(0) + Duration::Minutes(30);
  EXPECT_NOT_OK(spec.CheckElement(e));
}

TEST(IntervalRegularityTest, CalendricUnit) {
  // "a company policy that all such hires and terminations be effective on
  // either the first or the fifteenth of each month" — month-granular spans.
  ASSERT_OK_AND_ASSIGN(
      auto spec, IntervalRegularitySpec::Make(
                     IntervalRegularityDimension::kValidTime, Duration::Months(1)));
  EXPECT_OK(spec.CheckElement(MakeIntervalElement(
      T(0), testing::Civil(1992, 1, 1), testing::Civil(1992, 4, 1))));
  EXPECT_NOT_OK(spec.CheckElement(MakeIntervalElement(
      T(0), testing::Civil(1992, 1, 1), testing::Civil(1992, 4, 2))));
}

TEST(IntervalRegularityTest, BatchCheck) {
  ASSERT_OK_AND_ASSIGN(
      auto spec, IntervalRegularitySpec::Make(
                     IntervalRegularityDimension::kValidTime, Duration::Days(1)));
  std::vector<Element> good = {
      MakeIntervalElement(T(0), T(0), T(0) + Duration::Days(1), 1),
      MakeIntervalElement(T(1), T(0), T(0) + Duration::Days(3), 2),
  };
  EXPECT_OK(spec.CheckExtension(good));
  good.push_back(
      MakeIntervalElement(T(2), T(0), T(0) + Duration::Hours(5), 3));
  EXPECT_NOT_OK(spec.CheckExtension(good));
}

}  // namespace
}  // namespace tempspec
