// DiskManager, BufferPool, and WAL tests (filesystem-backed).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/serde.h"
#include "storage/wal.h"
#include "testing.h"

namespace tempspec {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tempspec_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const { return (path_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(DiskManagerTest, AllocateWriteRead) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  EXPECT_EQ(disk->page_count(), 0u);
  ASSERT_OK_AND_ASSIGN(PageId id, disk->AllocatePage());
  EXPECT_EQ(id, 0u);
  Page page;
  page.Zero();
  std::snprintf(page.data, kPageSize, "payload-%d", 42);
  ASSERT_OK(disk->WritePage(id, page));
  Page read;
  ASSERT_OK(disk->ReadPage(id, &read));
  EXPECT_STREQ(read.data, "payload-42");
}

TEST(DiskManagerTest, BoundsChecked) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  Page page;
  EXPECT_TRUE(disk->ReadPage(5, &page).IsOutOfRange());
  EXPECT_TRUE(disk->WritePage(5, page).IsOutOfRange());
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
    ASSERT_OK(disk->AllocatePage().status());
    Page page;
    page.Zero();
    page.data[0] = 'Z';
    ASSERT_OK(disk->WritePage(0, page));
    ASSERT_OK(disk->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  EXPECT_EQ(disk->page_count(), 1u);
  Page page;
  ASSERT_OK(disk->ReadPage(0, &page));
  EXPECT_EQ(page.data[0], 'Z');
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  BufferPool pool(disk.get(), 4);
  ASSERT_OK_AND_ASSIGN(PageGuard g0, pool.Allocate());
  const PageId id = g0.id();
  g0.Release();
  EXPECT_EQ(pool.misses(), 1u);
  { ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Fetch(id)); }
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  BufferPool pool(disk.get(), 2);
  // Write distinct bytes into 5 pages through a 2-frame pool.
  std::vector<PageId> ids;
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Allocate());
    g.mutable_page()->data[0] = static_cast<char>('a' + i);
    ids.push_back(g.id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  // All pages readable with their bytes (dirty evictions were written back).
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Fetch(ids[i]));
    EXPECT_EQ(g.page().data[0], static_cast<char>('a' + i));
  }
}

TEST(BufferPoolTest, AllPinnedFails) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  BufferPool pool(disk.get(), 2);
  ASSERT_OK_AND_ASSIGN(PageGuard g0, pool.Allocate());
  ASSERT_OK_AND_ASSIGN(PageGuard g1, pool.Allocate());
  auto g2 = pool.Allocate();
  EXPECT_FALSE(g2.ok());
  g0.Release();
  auto g3 = pool.Allocate();
  EXPECT_TRUE(g3.ok());
}

TEST(BufferPoolTest, FlushAllPersists) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(dir.file("data")));
  {
    BufferPool pool(disk.get(), 8);
    ASSERT_OK_AND_ASSIGN(PageGuard g, pool.Allocate());
    g.mutable_page()->data[7] = 'Q';
    g.Release();
    ASSERT_OK(pool.FlushAll());
  }
  Page page;
  ASSERT_OK(disk->ReadPage(0, &page));
  EXPECT_EQ(page.data[7], 'Q');
}

TEST(WalTest, AppendAndReplay) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(dir.file("wal")));
  EXPECT_EQ(wal->Append("one").ValueOrDie(), 0u);
  EXPECT_EQ(wal->Append("two").ValueOrDie(), 1u);
  EXPECT_EQ(wal->Append("three").ValueOrDie(), 2u);
  std::vector<std::string> seen;
  ASSERT_OK_AND_ASSIGN(uint64_t n,
                       wal->Replay([&](uint64_t lsn, std::string_view p) {
                         EXPECT_EQ(lsn, seen.size());
                         seen.emplace_back(p);
                         return Status::OK();
                       }));
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(seen, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(WalTest, LsnsContinueAcrossReopen) {
  TempDir dir;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(dir.file("wal")));
    ASSERT_OK(wal->Append("a").status());
    ASSERT_OK(wal->Append("b").status());
    ASSERT_OK(wal->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(dir.file("wal")));
  EXPECT_EQ(wal->next_lsn(), 2u);
  EXPECT_EQ(wal->Append("c").ValueOrDie(), 2u);
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  TempDir dir;
  const std::string path = dir.file("wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(path));
    ASSERT_OK(wal->Append("intact-1").status());
    ASSERT_OK(wal->Append("intact-2").status());
    ASSERT_OK(wal->Sync());
  }
  // Simulate a crash mid-append: chop off the last 5 bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(path));
  std::vector<std::string> seen;
  ASSERT_OK_AND_ASSIGN(uint64_t n,
                       wal->Replay([&](uint64_t, std::string_view p) {
                         seen.emplace_back(p);
                         return Status::OK();
                       }));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(seen, std::vector<std::string>{"intact-1"});
}

TEST(WalTest, CorruptPayloadDetectedByCrc) {
  TempDir dir;
  const std::string path = dir.file("wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(path));
    ASSERT_OK(wal->Append("aaaaaaaaaa").status());
    ASSERT_OK(wal->Sync());
  }
  // Flip a payload byte.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 26, SEEK_SET);  // inside the payload (24-byte header)
    std::fputc('X', f);
    std::fclose(f);
  }
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(path));
  ASSERT_OK_AND_ASSIGN(uint64_t n, wal->Replay([](uint64_t, std::string_view) {
                         return Status::OK();
                       }));
  EXPECT_EQ(n, 0u);
}

TEST(WalTest, ReplayFiltersOtherEpochs) {
  TempDir dir;
  const std::string path = dir.file("wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal,
                         WriteAheadLog::Open(path, SyncMode::kNone, 64,
                                             /*epoch=*/0));
    ASSERT_OK(wal->Append("stale-1").status());
    ASSERT_OK(wal->Append("stale-2").status());
    ASSERT_OK(wal->Sync());
  }
  // Reopen under the next epoch — the state a crash leaves when a backlog
  // compaction's WAL reset never became durable. The stale generation must
  // be invisible: not delivered, and not advancing the LSN counter.
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(path, SyncMode::kNone, 64,
                                                     /*epoch=*/1));
  EXPECT_EQ(wal->next_lsn(), 0u);
  ASSERT_OK(wal->Append("fresh").status());
  std::vector<std::string> seen;
  ASSERT_OK_AND_ASSIGN(uint64_t n,
                       wal->Replay([&](uint64_t lsn, std::string_view p) {
                         EXPECT_EQ(lsn, 0u);
                         seen.emplace_back(p);
                         return Status::OK();
                       }));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(seen, std::vector<std::string>{"fresh"});
}

TEST(WalTest, ResetClearsContentsButKeepsLsns) {
  TempDir dir;
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Open(dir.file("wal")));
  ASSERT_OK(wal->Append("x").status());
  ASSERT_OK(wal->Reset());
  ASSERT_OK_AND_ASSIGN(uint64_t n, wal->Replay([](uint64_t, std::string_view) {
                         return Status::OK();
                       }));
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(wal->Append("y").ValueOrDie(), 1u);  // LSN continues
}

}  // namespace
}  // namespace tempspec
