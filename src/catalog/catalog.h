// Relation catalog: named registry of schemas, declared specializations, and
// the relations themselves.
#ifndef TEMPSPEC_CATALOG_CATALOG_H_
#define TEMPSPEC_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/advisor.h"
#include "relation/temporal_relation.h"
#include "util/result.h"

namespace tempspec {

/// \brief Owns a set of temporal relations and their design metadata.
class Catalog {
 public:
  /// \brief Validates the declaration, opens the relation, and registers it
  /// under its schema name. Fails on duplicate names.
  Result<TemporalRelation*> CreateRelation(RelationOptions options);

  /// \brief Parses a CREATE ... RELATION statement (lang/ddl.h) and opens
  /// the relation. Non-declarative knobs (clock, storage, snapshots) come
  /// from `base`, whose schema/specializations are ignored.
  Result<TemporalRelation*> CreateRelationFromDdl(const std::string& ddl,
                                                  RelationOptions base = {});

  /// \brief Registered relation by name.
  Result<TemporalRelation*> Get(const std::string& name) const;

  /// \brief Advisor report for a registered relation.
  Result<AdvisorReport> AdviseFor(const std::string& name) const;

  std::vector<std::string> RelationNames() const;

  /// \brief Drops a relation (in-memory; storage files are left in place).
  Status Drop(const std::string& name);

  /// \brief Multi-line listing of every relation, its declaration, and its
  /// advisor summary.
  std::string Describe() const;

  /// \brief Writes every registered relation as canonical DDL, one statement
  /// per relation, to `path` (the schema-persistence file).
  Status SaveSchemas(const std::string& path) const;

  /// \brief Parses a schema file produced by SaveSchemas (or hand-written)
  /// and opens every relation, applying `base` for non-declarative options.
  /// Returns the number of relations registered.
  Result<size_t> LoadSchemas(const std::string& path,
                             const RelationOptions& base = {});

 private:
  std::map<std::string, std::unique_ptr<TemporalRelation>> relations_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_CATALOG_CATALOG_H_
