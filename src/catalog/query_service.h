// QueryService: a catalog wrapped for concurrent statement execution — the
// engine behind the network daemon (tools/tempspec_serve).
//
// The service classifies each statement with IsWriteStatement and takes a
// shared (read) or exclusive (write) lock on the catalog, upholding the
// relations' single-writer contract (relation/temporal_relation.h) while
// letting read statements from many connections run concurrently. CREATE /
// DROP RELATION are handled here rather than in query_lang because they
// mutate the catalog itself and must pick a storage directory.
//
// Persistence layout under `data_dir` (empty = fully in-memory):
//
//   <data_dir>/schemas.sql          canonical DDL, one statement per
//                                   relation (Catalog::SaveSchemas)
//   <data_dir>/relations/<name>/    per-relation backlog storage (WAL +
//                                   page file)
//
// Open() replays schemas.sql, opening each relation on its own directory —
// a restart recovers both the schemas and, through the backlog WAL, the
// data. Catalog::LoadSchemas is not used because it applies one storage
// directory to every relation.
#ifndef TEMPSPEC_CATALOG_QUERY_SERVICE_H_
#define TEMPSPEC_CATALOG_QUERY_SERVICE_H_

#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/query_lang.h"
#include "util/result.h"

namespace tempspec {

struct QueryServiceOptions {
  /// Root of the persistence tree; empty keeps everything in memory.
  std::string data_dir;
  /// Template for non-declarative relation knobs (clock, snapshots,
  /// granularity policy). Its schema/specializations/storage directory are
  /// ignored; the storage directory is derived per relation.
  RelationOptions relation_base;
};

class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});

  /// \brief Creates the data-dir layout and replays schemas.sql, opening
  /// (and WAL-recovering) every persisted relation. Call once before
  /// Execute. A missing schemas.sql is an empty catalog, not an error.
  Status Open();

  /// \brief Executes one statement under the appropriate lock and renders
  /// the output as text. `trace` (may be null) carries deadline and
  /// cancellation through to the executor's morsel-boundary polls.
  Result<std::string> Execute(const std::string& statement,
                              TraceContext* trace);

  std::vector<std::string> RelationNames() const;

  const QueryServiceOptions& options() const { return options_; }

  /// \brief Direct catalog access for tests and single-threaded setup;
  /// bypasses the statement locks.
  Catalog& catalog() { return catalog_; }

 private:
  /// CREATE ... RELATION: derives the storage directory, opens, persists.
  Result<std::string> ExecuteCreate(const std::string& statement);
  /// DROP RELATION <name>: unregisters and persists (files stay on disk).
  Result<std::string> ExecuteDrop(const std::string& statement);
  Status PersistSchemas();
  /// Relation options with the per-relation storage directory applied.
  RelationOptions BaseFor(const std::string& relation_name) const;
  std::string SchemasPath() const;

  QueryServiceOptions options_;
  Catalog catalog_;
  /// Writers exclusive (single-writer contract), readers shared.
  mutable std::shared_mutex mu_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_CATALOG_QUERY_SERVICE_H_
