#include "spec/interinterval_spec.h"

#include <algorithm>
#include <map>

namespace tempspec {

std::vector<IntervalStamp> ExtractIntervalStamps(std::span<const Element> elements,
                                                 TransactionAnchor anchor) {
  std::vector<IntervalStamp> out;
  out.reserve(elements.size());
  for (const Element& e : elements) {
    const TimePoint tt = AnchoredTransactionTime(e, anchor);
    if (anchor == TransactionAnchor::kDeletion && tt.IsMax()) continue;
    out.push_back(IntervalStamp{tt, e.valid.AsInterval(), e.object_surrogate});
  }
  return out;
}

namespace {

std::map<ObjectSurrogate, std::vector<IntervalStamp>> GroupStamps(
    std::span<const IntervalStamp> stamps, SpecScope scope) {
  std::map<ObjectSurrogate, std::vector<IntervalStamp>> groups;
  for (const auto& s : stamps) {
    const ObjectSurrogate key =
        scope == SpecScope::kPerRelation ? 0 : s.partition;
    groups[key].push_back(s);
  }
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const IntervalStamp& a, const IntervalStamp& b) {
                       return a.tt < b.tt;
                     });
  }
  return groups;
}

TimePoint OrderedPoint(const IntervalStamp& s, OrderingEndpoint ep) {
  return ep == OrderingEndpoint::kBegin ? s.valid.begin() : s.valid.end();
}

}  // namespace

Status IntervalOrderingSpec::CheckStamps(
    std::span<const IntervalStamp> stamps) const {
  for (auto& [key, group] : GroupStamps(stamps, scope_)) {
    (void)key;
    TimePoint running_max = TimePoint::Min();
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      const IntervalStamp& a = group[i];
      const IntervalStamp& b = group[i + 1];
      switch (kind_) {
        case IntervalOrderingKind::kNonDecreasing:
          if (!(OrderedPoint(a, endpoint_) <= OrderedPoint(b, endpoint_))) {
            return Status::ConstraintViolation(
                ToString(), " violated: interval ", b.valid.ToString(),
                " at tt ", b.tt.ToString(), " starts before earlier interval ",
                a.valid.ToString());
          }
          break;
        case IntervalOrderingKind::kNonIncreasing:
          if (!(OrderedPoint(b, endpoint_) <= OrderedPoint(a, endpoint_))) {
            return Status::ConstraintViolation(
                ToString(), " violated: interval ", b.valid.ToString(),
                " at tt ", b.tt.ToString(), " ends after earlier interval ",
                a.valid.ToString());
          }
          break;
        case IntervalOrderingKind::kSequential: {
          running_max = std::max(running_max, std::max(a.tt, a.valid.end()));
          const TimePoint next_min = std::min(b.tt, b.valid.begin());
          if (!(running_max <= next_min)) {
            return Status::ConstraintViolation(
                ToString(), " violated at tt ", b.tt.ToString(),
                ": an earlier interval was still open (or unstored) at ",
                next_min.ToString());
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

std::string IntervalOrderingSpec::ToString() const {
  std::string out = scope_ == SpecScope::kPerRelation ? "globally " : "per surrogate ";
  switch (kind_) {
    case IntervalOrderingKind::kNonDecreasing:
      out += "non-decreasing";
      break;
    case IntervalOrderingKind::kNonIncreasing:
      out += "non-increasing";
      break;
    case IntervalOrderingKind::kSequential:
      out += "sequential";
      break;
  }
  if (kind_ != IntervalOrderingKind::kSequential) {
    out += endpoint_ == OrderingEndpoint::kBegin ? " (starts)" : " (ends)";
  }
  return out;
}

Status SuccessiveSpec::CheckStamps(std::span<const IntervalStamp> stamps) const {
  for (auto& [key, group] : GroupStamps(stamps, scope_)) {
    (void)key;
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      const IntervalStamp& a = group[i];
      const IntervalStamp& b = group[i + 1];
      if (!Holds(relation_, a.valid, b.valid)) {
        auto actual = Classify(a.valid, b.valid);
        return Status::ConstraintViolation(
            ToString(), " violated: ", a.valid.ToString(), " then ",
            b.valid.ToString(), " are related by ",
            actual.ok() ? AllenRelationToString(actual.ValueOrDie()) : "nothing",
            ", not ", AllenRelationToString(relation_));
      }
    }
  }
  return Status::OK();
}

std::string SuccessiveSpec::ToString() const {
  std::string out = scope_ == SpecScope::kPerRelation ? "" : "per surrogate ";
  if (relation_ == AllenRelation::kMeets && !display_inverse_) {
    out += scope_ == SpecScope::kPerRelation ? "globally contiguous (st-meets)"
                                             : "contiguous (st-meets)";
    return out;
  }
  out += display_inverse_ ? "sti-" : "st-";
  out += AllenRelationToString(display_inverse_ ? Inverse(relation_) : relation_);
  return out;
}

Status OnlineIntervalChecker::Check(const IntervalStamp& stamp) const {
  const SpecScope scope = has_successive_ ? successive_.scope() : ordering_->scope();
  const ObjectSurrogate key =
      scope == SpecScope::kPerRelation ? 0 : stamp.partition;
  auto it = states_.find(key);
  if (it == states_.end()) return Status::OK();
  const State& st = it->second;

  if (st.has_prev) {
    if (has_successive_) {
      if (!Holds(successive_.relation(), st.prev_valid, stamp.valid)) {
        return Status::ConstraintViolation(
            successive_.ToString(), " violated: ", st.prev_valid.ToString(),
            " then ", stamp.valid.ToString());
      }
    } else {
      switch (ordering_->kind()) {
        case IntervalOrderingKind::kNonDecreasing: {
          const TimePoint prev = ordering_->endpoint() == OrderingEndpoint::kBegin
                                     ? st.prev_valid.begin()
                                     : st.prev_valid.end();
          const TimePoint cur = ordering_->endpoint() == OrderingEndpoint::kBegin
                                    ? stamp.valid.begin()
                                    : stamp.valid.end();
          if (!(prev <= cur)) {
            return Status::ConstraintViolation(ordering_->ToString(),
                                               " violated by ",
                                               stamp.valid.ToString());
          }
          break;
        }
        case IntervalOrderingKind::kNonIncreasing: {
          const TimePoint prev = ordering_->endpoint() == OrderingEndpoint::kBegin
                                     ? st.prev_valid.begin()
                                     : st.prev_valid.end();
          const TimePoint cur = ordering_->endpoint() == OrderingEndpoint::kBegin
                                    ? stamp.valid.begin()
                                    : stamp.valid.end();
          if (!(cur <= prev)) {
            return Status::ConstraintViolation(ordering_->ToString(),
                                               " violated by ",
                                               stamp.valid.ToString());
          }
          break;
        }
        case IntervalOrderingKind::kSequential:
          if (!(st.running_max <= std::min(stamp.tt, stamp.valid.begin()))) {
            return Status::ConstraintViolation(ordering_->ToString(),
                                               " violated by ",
                                               stamp.valid.ToString(), " at tt ",
                                               stamp.tt.ToString());
          }
          break;
      }
    }
  }
  return Status::OK();
}

void OnlineIntervalChecker::Commit(const IntervalStamp& stamp) {
  const SpecScope scope = has_successive_ ? successive_.scope() : ordering_->scope();
  const ObjectSurrogate key =
      scope == SpecScope::kPerRelation ? 0 : stamp.partition;
  State& st = states_[key];
  st.has_prev = true;
  st.prev_valid = stamp.valid;
  st.running_max =
      std::max(st.running_max, std::max(stamp.tt, stamp.valid.end()));
}

}  // namespace tempspec
