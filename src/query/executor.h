// Execution of the three temporal query classes over a TemporalRelation.
//
// Section 1 distinguishes (1) current queries, (2) historical queries (facts
// about the modeled reality — timeslice / valid-time range), and (3)
// rollback queries (the database as stored at a past transaction time). All
// timeslice strategies are interchangeable: they return the same result set;
// only the number of elements examined differs (QueryStats).
#ifndef TEMPSPEC_QUERY_EXECUTOR_H_
#define TEMPSPEC_QUERY_EXECUTOR_H_

#include <vector>

#include "query/optimizer.h"
#include "query/plan.h"
#include "relation/temporal_relation.h"

namespace tempspec {

/// \brief Executes temporal queries against one relation.
class QueryExecutor {
 public:
  explicit QueryExecutor(const TemporalRelation& relation)
      : relation_(relation),
        optimizer_(relation.specializations(), relation.schema()) {}

  const Optimizer& optimizer() const { return optimizer_; }

  /// \brief Current query: the present state of the relation.
  std::vector<Element> Current(QueryStats* stats = nullptr) const;

  /// \brief Rollback query: the state as stored at transaction time `tt`.
  std::vector<Element> Rollback(TimePoint tt, QueryStats* stats = nullptr) const;

  /// \brief Historical (timeslice) query: current-belief facts valid at
  /// `vt`. Strategy chosen by the optimizer.
  std::vector<Element> Timeslice(TimePoint vt, QueryStats* stats = nullptr) const;

  /// \brief Timeslice with an explicit plan (for baseline measurements).
  std::vector<Element> TimesliceWith(const PlanChoice& plan, TimePoint vt,
                                     QueryStats* stats = nullptr) const;

  /// \brief Facts whose valid time intersects [lo, hi), current belief.
  std::vector<Element> ValidRange(TimePoint lo, TimePoint hi,
                                  QueryStats* stats = nullptr) const;
  std::vector<Element> ValidRangeWith(const PlanChoice& plan, TimePoint lo,
                                      TimePoint hi,
                                      QueryStats* stats = nullptr) const;

  /// \brief Bitemporal query: facts valid at `vt` as believed at transaction
  /// time `tt`.
  std::vector<Element> TimesliceAsOf(TimePoint vt, TimePoint tt,
                                     QueryStats* stats = nullptr) const;

 private:
  bool MatchesRange(const Element& e, TimePoint lo, TimePoint hi) const;

  const TemporalRelation& relation_;
  Optimizer optimizer_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_EXECUTOR_H_
