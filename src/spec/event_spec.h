// The isolated-event taxonomy (Section 3.1).
//
// Each specialized type restricts the pair (tt_e, vt_e) of every element in
// every possible extension (intensional definitions). Each property is
// relative to ONE of the two transaction times: insertion (tt_b) or deletion
// (tt_d); a relation that has a property for both may be called
// "modification <property>".
//
// All types here are bands of the offset vt - tt (see band.h):
//
//   general                                  (-inf, +inf)
//   retroactive                              (-inf, 0]
//   delayed retroactive, Δt > 0              (-inf, -Δt]
//   predictive                               [0, +inf)
//   early predictive, Δt > 0                 [+Δt, +inf)
//   retroactively bounded, Δt >= 0           [-Δt, +inf)
//   predictively bounded, Δt > 0             (-inf, +Δt]
//   strongly retroactively bounded, Δt >= 0  [-Δt, 0]
//   delayed strongly retro. bounded          [-Δt_max, -Δt_min], 0<=Δt_min<Δt_max
//   strongly predictively bounded, Δt > 0    [0, +Δt]
//   early strongly pred. bounded             [+Δt_min, +Δt_max], 0<Δt_min<Δt_max
//   strongly bounded, Δt1,Δt2 >= 0           [-Δt1, +Δt2]
//   degenerate                               vt = tt within the granularity
//
// Per the paper's completeness assumption 4, closed (<=) bounds are the
// default; open variants are available on every constructor.
//
// A *determined* relation additionally fixes vt = m(e) for a mapping
// function m; every undetermined type has a determined counterpart whose
// mapping must obey the type's band.
#ifndef TEMPSPEC_SPEC_EVENT_SPEC_H_
#define TEMPSPEC_SPEC_EVENT_SPEC_H_

#include <optional>
#include <string>

#include "model/element.h"
#include "spec/band.h"
#include "spec/mapping.h"
#include "timex/granularity.h"
#include "util/result.h"

namespace tempspec {

enum class EventSpecKind : uint8_t {
  kGeneral = 0,
  kRetroactive,
  kDelayedRetroactive,
  kPredictive,
  kEarlyPredictive,
  kRetroactivelyBounded,
  kPredictivelyBounded,
  kStronglyRetroactivelyBounded,
  kDelayedStronglyRetroactivelyBounded,
  kStronglyPredictivelyBounded,
  kEarlyStronglyPredictivelyBounded,
  kStronglyBounded,
  kDegenerate,
};

constexpr size_t kNumEventSpecKinds = 13;

/// \brief The paper's name of the type, e.g. "strongly retroactively bounded".
const char* EventSpecKindToString(EventSpecKind kind);

/// \brief An instance of an isolated-event specialization: a kind plus its
/// instantiated bounds, the transaction-time anchor it constrains, and an
/// optional mapping function making it determined.
class EventSpecialization {
 public:
  /// \brief The unrestricted relation.
  static EventSpecialization General();
  /// \brief vt <= tt: the event occurred before it was stored.
  static EventSpecialization Retroactive(bool open = false);
  /// \brief vt <= tt - Δt, Δt > 0: a minimum storage delay.
  static Result<EventSpecialization> DelayedRetroactive(Duration dt,
                                                        bool open = false);
  /// \brief vt >= tt: not valid until after storage.
  static EventSpecialization Predictive(bool open = false);
  /// \brief vt >= tt + Δt, Δt > 0: stored at least Δt in advance.
  static Result<EventSpecialization> EarlyPredictive(Duration dt, bool open = false);
  /// \brief vt >= tt - Δt, Δt >= 0: never stored more than Δt late.
  static Result<EventSpecialization> RetroactivelyBounded(Duration dt,
                                                          bool open = false);
  /// \brief vt <= tt + Δt, Δt > 0: never stored more than Δt early.
  static Result<EventSpecialization> PredictivelyBounded(Duration dt,
                                                         bool open = false);
  /// \brief tt - Δt <= vt <= tt.
  static Result<EventSpecialization> StronglyRetroactivelyBounded(Duration dt);
  /// \brief tt - Δt_max <= vt <= tt - Δt_min, 0 <= Δt_min < Δt_max.
  static Result<EventSpecialization> DelayedStronglyRetroactivelyBounded(
      Duration dt_min, Duration dt_max);
  /// \brief tt <= vt <= tt + Δt.
  static Result<EventSpecialization> StronglyPredictivelyBounded(Duration dt);
  /// \brief tt + Δt_min <= vt <= tt + Δt_max, 0 < Δt_min < Δt_max.
  static Result<EventSpecialization> EarlyStronglyPredictivelyBounded(
      Duration dt_min, Duration dt_max);
  /// \brief tt - Δt1 <= vt <= tt + Δt2.
  static Result<EventSpecialization> StronglyBounded(Duration dt1, Duration dt2);
  /// \brief vt = tt within the relation's granularity.
  static EventSpecialization Degenerate();

  /// \brief Classifies an arbitrary band into the tightest kind of the
  /// taxonomy that exactly matches its shape (used by the completeness
  /// enumeration and the inference engine).
  static EventSpecKind ClassifyBand(const Band& band);

  EventSpecKind kind() const { return kind_; }
  const Band& band() const { return band_; }

  TransactionAnchor anchor() const { return anchor_; }
  /// \brief Returns a copy constraining the deletion (or insertion) time
  /// instead; e.g. "deletion retroactive" vs "insertion retroactive".
  EventSpecialization WithAnchor(TransactionAnchor anchor) const;

  bool IsDetermined() const { return mapping_.has_value(); }
  const std::optional<MappingFunction>& mapping() const { return mapping_; }
  /// \brief The determined counterpart with mapping m: vt must equal m(e) and
  /// m(e) must obey this type's band (e.g. "retroactively determined").
  EventSpecialization Determined(MappingFunction m) const;

  /// \brief Checks a (tt, vt) stamp pair against the band (no mapping, no
  /// granularity — the raw Figure 1 region test).
  bool Satisfies(TimePoint tt, TimePoint vt) const;

  /// \brief Full intensional check of one element: picks the anchored
  /// transaction time, applies the granularity rule for degenerate types, and
  /// verifies the mapping for determined types. Elements whose anchored
  /// transaction time is still open (tt_d = until-changed) pass vacuously.
  Status CheckElement(const Element& e, Granularity granularity) const;

  /// \brief True if every extension satisfying this type also satisfies
  /// `other` (band containment); nullopt when calendric bounds make it
  /// anchor-dependent.
  std::optional<bool> Implies(const EventSpecialization& other) const;

  /// \brief e.g. "insertion delayed retroactive(Δt=30s) [(-inf, -30s]]".
  std::string ToString() const;

 private:
  EventSpecialization(EventSpecKind kind, Band band)
      : kind_(kind), band_(band) {}

  EventSpecKind kind_;
  Band band_;
  TransactionAnchor anchor_ = TransactionAnchor::kInsertion;
  std::optional<MappingFunction> mapping_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_EVENT_SPEC_H_
