// Randomized contract test for IntervalIndex::Overlapping / Stab.
//
// The executor's row-at-a-time probe path (ExecutionStrategy::kValidIndex)
// leans on one documented property: probe results come back in ascending
// VALUE order, where values are element positions — that ordering is what
// lets query execution emit position-ordered results with no per-query sort,
// and what the serial/parallel byte-identity contract inherits. This test
// hammers that contract with randomized interval sets (a mix of proper
// intervals and unit-chronon events, duplicates included), values assigned
// 0..n-1 in insertion order, across every internal state the index passes
// through: pure delta buffer, mixed core + delta after automatic merges, and
// fully Compact()ed core.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/interval_index.h"
#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

struct NaiveEntry {
  int64_t begin;
  int64_t end;
  uint64_t value;
};

/// \brief Reference implementation: linear scan in insertion (= value)
/// order, so its output is ascending-by-value by construction.
std::vector<uint64_t> NaiveOverlapping(const std::vector<NaiveEntry>& entries,
                                       int64_t lo, int64_t hi) {
  std::vector<uint64_t> out;
  for (const NaiveEntry& e : entries) {
    if (e.begin < hi && lo < e.end) out.push_back(e.value);
  }
  return out;
}

std::vector<uint64_t> NaiveStab(const std::vector<NaiveEntry>& entries,
                                int64_t tp) {
  return NaiveOverlapping(entries, tp, tp + 1);
}

TEST(IntervalIndexContractTest, OverlappingMatchesNaiveInAscendingOrder) {
  Random rng(20260807);
  for (int round = 0; round < 20; ++round) {
    IntervalIndex index;
    std::vector<NaiveEntry> naive;
    const int64_t domain = 1 + rng.Uniform(50, 2000);
    const int inserts = static_cast<int>(rng.Uniform(1, 400));

    auto check_queries = [&](const char* state) {
      SCOPED_TRACE(std::string(state) + " round " + std::to_string(round) +
                   " size " + std::to_string(naive.size()));
      for (int q = 0; q < 16; ++q) {
        const int64_t a = rng.Uniform(-10, domain + 10);
        const int64_t b = rng.Uniform(-10, domain + 10);
        const int64_t lo = std::min(a, b);
        const int64_t hi = std::max(a, b) + 1;
        const std::vector<uint64_t> got =
            index.Overlapping(T(lo), T(hi));
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()))
            << "Overlapping must return ascending positions";
        ASSERT_EQ(got, NaiveOverlapping(naive, T(lo).micros(), T(hi).micros()));

        const int64_t stab = rng.Uniform(-10, domain + 10);
        const std::vector<uint64_t> stabbed = index.Stab(T(stab));
        ASSERT_TRUE(std::is_sorted(stabbed.begin(), stabbed.end()));
        ASSERT_EQ(stabbed, NaiveStab(naive, T(stab).micros()));
      }
    };

    for (int i = 0; i < inserts; ++i) {
      const int64_t begin = rng.Uniform(0, domain);
      // ~1/3 unit-chronon events (how event relations index instants),
      // ~2/3 proper intervals; duplicates arise naturally from the small
      // domain.
      const int64_t len =
          rng.Uniform(0, 2) == 0 ? 0 : rng.Uniform(0, domain / 4);
      const int64_t end = begin + 1 + len;
      index.Insert(TimeInterval(T(begin), T(end)),
                   static_cast<uint64_t>(naive.size()));
      naive.push_back(NaiveEntry{T(begin).micros(), T(end).micros(),
                                 static_cast<uint64_t>(naive.size())});
      // Query mid-stream every so often: exercises the pure-delta state
      // early and the post-auto-merge mixed state later.
      if (i % 37 == 36) check_queries("interleaved");
    }
    check_queries("loaded");
    EXPECT_EQ(index.size(), naive.size());

    index.Compact();
    EXPECT_EQ(index.delta_size(), 0u);
    check_queries("compacted");
  }
}

TEST(IntervalIndexContractTest, EmptyAndDegenerateQueries) {
  IntervalIndex index;
  EXPECT_TRUE(index.Overlapping(T(0), T(100)).empty());
  EXPECT_TRUE(index.Stab(T(5)).empty());

  index.Insert(TimeInterval(T(10), T(11)), 0);  // unit-chronon event
  index.Compact();
  EXPECT_EQ(index.Stab(T(10)), (std::vector<uint64_t>{0}));
  EXPECT_TRUE(index.Stab(T(11)).empty()) << "end is exclusive";
  EXPECT_TRUE(index.Overlapping(T(11), T(20)).empty());
  EXPECT_EQ(index.Overlapping(T(0), T(11)), (std::vector<uint64_t>{0}));
}

}  // namespace
}  // namespace tempspec
