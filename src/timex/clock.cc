#include "timex/clock.h"

#include <chrono>

namespace tempspec {

TimePoint SystemClock::Next() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const int64_t micros =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  TimePoint tp = TimePoint::FromMicros(micros);
  if (!(tp > last_)) tp = TimePoint::FromMicros(last_.micros() + 1);
  last_ = tp;
  return tp;
}

}  // namespace tempspec
