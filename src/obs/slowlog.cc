#include "obs/slowlog.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tempspec {

std::string SlowQueryEntry::ToJson() const {
  std::string out = "{\"sequence\":" + std::to_string(sequence) +
                    ",\"trace_id\":" + std::to_string(trace_id) +
                    ",\"unix_micros\":" + std::to_string(unix_micros) +
                    ",\"wall_micros\":" + std::to_string(wall_micros) +
                    ",\"statement\":\"" + JsonEscape(statement) + "\"";
  if (!protocol.empty()) {
    out += ",\"protocol\":\"" + JsonEscape(protocol) + "\"";
  }
  if (!peer.empty()) out += ",\"peer\":\"" + JsonEscape(peer) + "\"";
  if (!wire_trace.empty()) {
    out += ",\"wire_trace\":\"" + JsonEscape(wire_trace) + "\"";
  }
  out += ",\"trace\":";
  out += trace_json.empty() ? "{}" : trace_json;
  out += "}";
  return out;
}

SlowQueryLog& SlowQueryLog::Instance() {
  static SlowQueryLog* log = new SlowQueryLog();  // leaked: process lifetime
  return *log;
}

void SlowQueryLog::SetThresholdMicros(uint64_t threshold) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_micros_ = threshold;
}

uint64_t SlowQueryLog::threshold_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_micros_;
}

void SlowQueryLog::SetSinkPath(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_path_ = std::move(path);
}

void SlowQueryLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<ptrdiff_t>(ring_.size() - capacity_));
  }
}

void SlowQueryLog::ConfigureFromEnv() {
  if (const char* v = std::getenv("TEMPSPEC_SLOWLOG_MICROS")) {
    if (*v != '\0') {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end != v) SetThresholdMicros(static_cast<uint64_t>(parsed));
    }
  }
  if (const char* v = std::getenv("TEMPSPEC_SLOWLOG_PATH")) {
    if (*v != '\0') SetSinkPath(v);
  }
  if (const char* v = std::getenv("TEMPSPEC_SLOWLOG_CAPACITY")) {
    if (*v != '\0') {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) SetCapacity(static_cast<size_t>(parsed));
    }
  }
}

void SlowQueryLog::Record(TraceContext& trace, const std::string& statement) {
  trace.End();
  SlowQueryEntry entry;
  entry.unix_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  entry.wall_micros = trace.wall_micros();
  entry.trace_id = trace.trace_id();
  entry.statement = statement;
  entry.protocol = trace.attr("protocol");
  entry.peer = trace.attr("peer");
  entry.wire_trace = trace.WireTraceId();

  std::string sink_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry.wall_micros < threshold_micros_) return;
    entry.trace_json = trace.ToJson();
    entry.sequence = ++sequence_;
    if (capacity_ == 0) return;
    if (ring_.size() >= capacity_) {
      ring_.erase(ring_.begin(),
                  ring_.begin() +
                      static_cast<ptrdiff_t>(ring_.size() - capacity_ + 1));
    }
    ring_.push_back(entry);
    sink_path = sink_path_;
  }
  TS_COUNTER_INC("tempspec.obs.slowlog_recorded");
  if (!sink_path.empty()) {
    // Append outside the lock: a slow disk must not stall recorders.
    std::ofstream out(sink_path, std::ios::app);
    if (out) out << entry.ToJson() << "\n";
  }
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

uint64_t SlowQueryLog::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  sequence_ = 0;
}

}  // namespace tempspec
