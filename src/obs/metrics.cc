#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tempspec {

bool MetricsCompiledIn() {
#ifdef TEMPSPEC_METRICS
  return true;
#else
  return false;
#endif
}

size_t ThisThreadMetricShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

uint64_t MetricCounter::Value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void MetricCounter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void MetricHistogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
  }
}

size_t HistogramBucketFor(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // 0 -> 0, else 1..64
}

uint64_t HistogramBucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : buckets) {
    cumulative += n;
    if (static_cast<double>(cumulative) >= target) {
      return HistogramBucketUpperBound(bucket);
    }
  }
  return HistogramBucketUpperBound(buckets.empty() ? 0 : buckets.back().first);
}

HistogramSnapshot MetricHistogram::Snapshot() const {
  uint64_t totals[kHistogramBuckets] = {};
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      totals[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (totals[b] == 0) continue;
    out.count += totals[b];
    out.buckets.emplace_back(b, totals[b]);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked so instrumented destructors of other static objects can still
  // record at exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<MetricCounter>(name);
  return *slot;
}

MetricGauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MetricGauge>(name);
  return *slot;
}

MetricHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<MetricHistogram>(name);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
  return snap;
}

size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::ResetValues() {
  // Not atomic with respect to concurrent writers; benches call this in a
  // quiescent moment between runs. Handles must stay valid, so every metric
  // is zeroed in place.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

uint32_t LabelDim::Intern(const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(value);
  if (it != ids_.end()) return it->second;
  if (ids_.size() >= capacity_) return kOverflowId;
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = next_id_++;
  }
  ids_[value] = id;
  values_[id] = value;
  return id;
}

void LabelDim::Release(const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(value);
  if (it == ids_.end()) return;
  values_.erase(it->second);
  free_ids_.push_back(it->second);
  ids_.erase(it);
}

std::string LabelDim::ValueOf(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(id);
  return it == values_.end() ? std::string("other") : it->second;
}

size_t LabelDim::LiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

void LabelDim::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ids_.clear();
  values_.clear();
  free_ids_.clear();
  next_id_ = 1;
}

QueryLatencyFamily::QueryLatencyFamily()
    : relations_(kRelationCapacity), kinds_(32), protocols_(8) {}

QueryLatencyFamily& QueryLatencyFamily::Instance() {
  // Leaked for the same reason as MetricsRegistry::Instance().
  static QueryLatencyFamily* family = new QueryLatencyFamily();
  return *family;
}

namespace {

uint64_t PackSeriesKey(uint32_t relation_id, uint32_t kind_id,
                       uint32_t protocol_id) {
  return (static_cast<uint64_t>(relation_id) << 32) |
         (static_cast<uint64_t>(kind_id & 0xffff) << 16) |
         static_cast<uint64_t>(protocol_id & 0xffff);
}

}  // namespace

void QueryLatencyFamily::Observe(const std::string& relation,
                                 const std::string& kind,
                                 const std::string& protocol,
                                 uint64_t wall_micros) {
  const uint32_t relation_id = relations_.Intern(relation);
  const uint32_t kind_id = kinds_.Intern(kind);
  const uint32_t protocol_id = protocols_.Intern(protocol);
  std::lock_guard<std::mutex> lock(mu_);
  Series& s = series_[PackSeriesKey(relation_id, kind_id, protocol_id)];
  s.buckets[HistogramBucketFor(wall_micros)] += 1;
  s.sum += wall_micros;
}

void QueryLatencyFamily::ReleaseRelation(const std::string& relation) {
  // Evict the series before recycling the id, so a later relation reusing
  // the slot starts from empty histograms.
  const uint32_t relation_id = relations_.Intern(relation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = series_.begin(); it != series_.end();) {
      if (static_cast<uint32_t>(it->first >> 32) == relation_id &&
          relation_id != LabelDim::kOverflowId) {
        it = series_.erase(it);
      } else {
        ++it;
      }
    }
  }
  relations_.Release(relation);
}

std::vector<LabeledSeries> QueryLatencyFamily::Scrape() const {
  std::vector<LabeledSeries> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    LabeledSeries row;
    row.relation = relations_.ValueOf(static_cast<uint32_t>(key >> 32));
    row.kind = kinds_.ValueOf(static_cast<uint32_t>((key >> 16) & 0xffff));
    row.protocol = protocols_.ValueOf(static_cast<uint32_t>(key & 0xffff));
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      row.latency.count += s.buckets[b];
      row.latency.buckets.emplace_back(b, s.buckets[b]);
    }
    row.latency.sum = s.sum;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const LabeledSeries& a, const LabeledSeries& b) {
              if (a.relation != b.relation) return a.relation < b.relation;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.protocol < b.protocol;
            });
  return out;
}

size_t QueryLatencyFamily::SeriesCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

size_t QueryLatencyFamily::LiveRelationLabels() const {
  return relations_.LiveCount();
}

void QueryLatencyFamily::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  relations_.Clear();
  kinds_.Clear();
  protocols_.Clear();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + std::to_string(h.Percentile(0.5)) +
           ",\"p99\":" + std::to_string(h.Percentile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace tempspec
