#include "query/kernels.h"

#include <algorithm>
#include <bit>

namespace tempspec {

namespace {

// Rows per flags pass: one uint8 lane per row, sized so the flags buffer and
// the column slices it reads stay L1/L2-resident alongside the output.
constexpr size_t kBlock = 4096;

/// \brief Evaluates `pred(position) -> uint8_t` over [begin, end) in blocks:
/// a branch-free flags pass (the auto-vectorizable loop), then a pack into
/// 64-bit selection words drained with countr_zero. Matches append to `out`
/// in ascending position order.
template <typename Pred>
void ScanBlocks(size_t begin, size_t end, const Pred& pred,
                std::vector<uint64_t>* out) {
  alignas(64) uint8_t flags[kBlock];
  for (size_t base = begin; base < end; base += kBlock) {
    const size_t n = std::min(kBlock, end - base);
    for (size_t i = 0; i < n; ++i) {
      flags[i] = pred(base + i);
    }
    for (size_t w = 0; w < n; w += 64) {
      const size_t m = std::min<size_t>(64, n - w);
      uint64_t bits = 0;
      for (size_t b = 0; b < m; ++b) {
        bits |= static_cast<uint64_t>(flags[w + b]) << b;
      }
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        out->push_back(static_cast<uint64_t>(base + w + b));
        bits &= bits - 1;
      }
    }
  }
}

}  // namespace

std::pair<size_t, size_t> MonotoneBounds(const StampColumns& cols, int64_t lo,
                                         int64_t hi) {
  const int64_t* first = cols.vt_start;
  const int64_t* last = cols.vt_start + cols.size;
  const size_t a = static_cast<size_t>(std::lower_bound(first, last, lo) - first);
  const size_t b = static_cast<size_t>(
      std::lower_bound(cols.vt_start + a, last, hi) - first);
  return {a, b};
}

void KernelScan(ScanKernel kernel, const StampColumns& cols, size_t begin,
                size_t end, int64_t lo, int64_t hi, int64_t as_of,
                std::vector<uint64_t>* out) {
  const int64_t* const ts = cols.tt_start;
  const int64_t* const te = cols.tt_end;
  const int64_t* const vs = cols.vt_start;
  const int64_t* const ve = cols.vt_end;
  // The bools multiply with `&` instead of `&&` on purpose: every column is
  // loaded unconditionally, so the flags loop has no data-dependent control
  // flow for the vectorizer to trip on.
  switch (kernel) {
    case ScanKernel::kGeneric:
      if (as_of == kCurrentAsOf) {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>((vs[i] < hi) & (lo < ve[i]) &
                                                 (as_of < te[i]));
                   },
                   out);
      } else {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>((vs[i] < hi) & (lo < ve[i]) &
                                                 (ts[i] <= as_of) &
                                                 (as_of < te[i]));
                   },
                   out);
      }
      return;

    case ScanKernel::kDegenerate:
    case ScanKernel::kBanded:
      // Event stamps: vt_end == vt_start + 1 by construction, so the second
      // half-plane `lo < vt_end` is `lo <= vt_start` — one column, two
      // compares.
      if (as_of == kCurrentAsOf) {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>((lo <= vs[i]) & (vs[i] < hi) &
                                                 (as_of < te[i]));
                   },
                   out);
      } else {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>((lo <= vs[i]) & (vs[i] < hi) &
                                                 (ts[i] <= as_of) &
                                                 (as_of < te[i]));
                   },
                   out);
      }
      return;

    case ScanKernel::kMonotone:
      // [begin, end) already came out of MonotoneBounds: every candidate
      // satisfies the valid-range tests, only existence remains.
    case ScanKernel::kExistence:
      if (as_of == kCurrentAsOf) {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>(as_of < te[i]);
                   },
                   out);
      } else {
        ScanBlocks(begin, end,
                   [=](size_t i) -> uint8_t {
                     return static_cast<uint8_t>((ts[i] <= as_of) &
                                                 (as_of < te[i]));
                   },
                   out);
      }
      return;

    case ScanKernel::kRowAtATime:
      break;  // no columnar form; the executor keeps its Element walk
  }
}

}  // namespace tempspec
