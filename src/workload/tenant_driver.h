// Closed-loop tenant drivers for the production traffic simulator
// (tools/tempspec_simulate).
//
// Each TenantDriver owns one connection to a live tempspec_serve daemon and
// plays one of the paper's seven applications against its own relation,
// generating statements that respect the relation's *declared* temporal
// specialization — so a healthy run produces zero constraint rejections and
// the specializations stay CONFORMING end to end. The ledger tenant can be
// flipped into hostile mode mid-run (StartDrift), after which its writes
// violate the declared STRONGLY BOUNDED band on purpose: the drift monitor
// must flip the relation to DRIFTED and the optimizer must stop trusting the
// declaration.
//
// Transaction-time prediction. The server stamps each relation's mutations
// from a per-relation LogicalClock that starts at the epoch and advances one
// second per mutation that reaches the engine (admission rejections never
// reach it; engine-side constraint rejections and deletes do). Each driver
// is the only writer of its relation, so it mirrors that clock with a local
// tick counter and derives valid times from the predicted stamp. The
// prediction is an upper bound — ambiguous outcomes (deadline, transport)
// and crash-recovery clock shifts can make the real stamp trail it by a few
// seconds — so every generated offset keeps a >= 2 hour margin inside its
// declared band, far wider than any achievable drift of the prediction.
//
// Reconciliation. The driver classifies every reply and exposes bounds the
// simulator checks after the run:
//   - live element count: acked inserts/deletes give exact bounds, widened
//     only by ambiguous writes (a deadline or connection loss after the
//     statement may or may not have executed);
//   - server.requests: every non-rejected reply the driver received was
//     counted by the server, so client totals must match the scraped
//     metrics exactly, widened only by transport-ambiguous sends.
#ifndef TEMPSPEC_WORKLOAD_TENANT_DRIVER_H_
#define TEMPSPEC_WORKLOAD_TENANT_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/client.h"
#include "util/random.h"
#include "workload/workloads.h"

namespace tempspec {

/// \brief Shared server coordinates, mutated by the simulator's daemon
/// controller and polled by every tenant. `port` is 0 while the daemon is
/// down (crash window); `generation` is bumped on every (re)start so drivers
/// know a reconnect is due even if the new port happens to match.
struct SimEndpoint {
  std::string host = "127.0.0.1";
  std::atomic<int> port{0};
  std::atomic<uint64_t> generation{0};
  std::atomic<bool> stop{false};
};

struct TenantOptions {
  Scenario scenario = Scenario::kProcessMonitoring;
  ClientProtocol protocol = ClientProtocol::kHttp;
  uint64_t seed = 1;
  /// Per-statement deadline budget sent on the wire (0 = server default).
  uint64_t deadline_ms = 5000;
  /// Closed-loop read/write mix: this many reads follow each write.
  int reads_per_write = 3;
  /// Closed-loop think time between operations (0 = tight loop).
  int think_time_us = 0;
  /// When > 0, arrivals are paced at this rate from a fixed schedule and
  /// latency is measured from the *scheduled* instant (open-loop style:
  /// queueing delay behind a slow server counts against the SLO instead of
  /// being absorbed by coordinated omission).
  double paced_rate_per_s = 0;
  /// Stop after this many operations (0 = run until SimEndpoint::stop).
  uint64_t max_ops = 0;
  /// Deterministic drift trigger: start violating the declared band at this
  /// operation index (0 = only via StartDrift). Used by op-capped simulator
  /// runs, where a wall-clock trigger could miss a fast tenant entirely.
  uint64_t drift_after_ops = 0;
};

/// \brief Everything a tenant learned from its run. Plain data; read it
/// after the driver thread is joined.
struct TenantReport {
  std::string relation;
  std::string application;

  uint64_t acked_inserts = 0;
  uint64_t acked_deletes = 0;
  uint64_t reads_ok = 0;
  uint64_t read_errors = 0;
  /// Engine-side constraint rejections. Zero for a conforming tenant; the
  /// drift tenant accumulates these on purpose after StartDrift.
  uint64_t constraint_rejections = 0;
  /// The subset of constraint_rejections observed while drifting.
  uint64_t drift_rejections = 0;
  /// Admission-control rejections (all retried; the statement never reached
  /// the engine).
  uint64_t admission_rejections = 0;
  /// Writes whose fate is unknown: deadline expiries and connection losses
  /// after the send. They widen the reconciliation bounds.
  uint64_t ambiguous_inserts = 0;
  uint64_t ambiguous_deletes = 0;
  uint64_t transport_errors = 0;
  uint64_t server_errors = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t reconnects = 0;
  /// Replies received that the server must have counted in server.requests
  /// (everything except admission rejections and transport failures).
  uint64_t requests_counted = 0;

  /// Truncated server error bodies ("write: ..." / "read: ..."), newest
  /// last, capped at kMaxErrorDetails. Reconciliation evidence: when a
  /// bound check fails, the report shows *what* the server said instead of
  /// a bare error counter.
  static constexpr size_t kMaxErrorDetails = 32;
  static constexpr size_t kErrorDetailBytes = 160;
  std::vector<std::string> error_details;

  std::vector<double> write_latency_ns;
  std::vector<double> read_latency_ns;
};

class TenantDriver {
 public:
  TenantDriver(const TenantOptions& options, SimEndpoint* endpoint);

  /// \brief The live CREATE statement for the scenario's relation: the
  /// declared specializations the driver's traffic is generated to honor.
  /// (The archaeology tenant declares NONINCREASING only and the payroll
  /// tenant omits valid regularity — the wire declaration is intentionally
  /// the strongest set this driver can keep conforming.)
  static std::string CreateStatement(Scenario scenario);

  /// \brief Runs the closed loop until SimEndpoint::stop (or max_ops).
  /// Blocking; call on a dedicated thread.
  void Run();

  /// \brief Hostile-scenario hook: from the next write on, generate valid
  /// times far outside the declared band. Thread-safe.
  void StartDrift() { drift_.store(true, std::memory_order_relaxed); }
  bool drifting() const { return drift_.load(std::memory_order_relaxed); }

  const TenantOptions& options() const { return options_; }
  const TenantReport& report() const { return report_; }

  /// \brief Operations completed so far (reads + writes, including retries'
  /// final outcome). Safe to poll from other threads while Run is live —
  /// the simulator paces its scenario timeline off this in capped runs.
  uint64_t ops_completed() const {
    return ops_completed_.load(std::memory_order_relaxed);
  }

  /// \brief Drifted writes the engine has rejected so far; pollable while
  /// Run is live. The simulator asserts the DRIFTED flip as soon as this is
  /// nonzero — drift-monitor state is in-memory, so waiting until after a
  /// crash scenario would see it legitimately reset by WAL replay (rejected
  /// writes are never persisted).
  uint64_t drift_rejections_observed() const {
    return drift_rejections_observed_.load(std::memory_order_relaxed);
  }

  // Reconciliation bounds on CURRENT <relation> after the run.
  uint64_t MinLiveElements() const;
  uint64_t MaxLiveElements() const;

 private:
  bool EnsureConnected();
  std::string NextWriteStatement(bool* is_delete);
  std::string NextReadStatement();
  void RecordWrite(const WireReply& reply, bool is_delete);
  void RecordRead(const WireReply& reply);
  /// Keeps a truncated copy of an error reply body in the report.
  void RetainErrorDetail(const char* op, const WireReply& reply);
  std::string FmtTime(int64_t micros) const;

  TenantOptions options_;
  SimEndpoint* endpoint_;
  QueryClient client_;
  Random rng_;
  std::atomic<bool> drift_{false};
  std::atomic<uint64_t> ops_completed_{0};
  std::atomic<uint64_t> drift_rejections_observed_{0};

  /// Mutations predicted to have reached the engine (clock upper bound).
  uint64_t ticks_ = 0;
  uint64_t write_index_ = 0;
  uint64_t read_index_ = 0;
  uint64_t connected_generation_ = 0;
  bool ever_connected_ = false;
  /// Valid-time probe for reads: tracks the last planned valid instant.
  int64_t probe_us_ = 0;

  // Scenario-local generation state.
  uint64_t next_employee_ = 0;
  std::vector<uint64_t> employee_weeks_;
  uint64_t strata_layer_ = 0;
  std::vector<uint64_t> pending_order_ids_;

  TenantReport report_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_WORKLOAD_TENANT_DRIVER_H_
