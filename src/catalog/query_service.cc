#include "catalog/query_service.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "lang/ddl.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace tempspec {

namespace {

std::string FirstVerb(const std::string& statement) {
  size_t i = 0;
  while (i < statement.size() &&
         std::isspace(static_cast<unsigned char>(statement[i]))) {
    ++i;
  }
  std::string verb;
  while (i < statement.size() &&
         (std::isalnum(static_cast<unsigned char>(statement[i])) ||
          statement[i] == '_')) {
    verb.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(statement[i]))));
    ++i;
  }
  return verb;
}

Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create directory '", path, "': ",
                           ec.message());
  }
  return Status::OK();
}

}  // namespace

QueryService::QueryService(QueryServiceOptions options)
    : options_(std::move(options)) {}

std::string QueryService::SchemasPath() const {
  return options_.data_dir + "/schemas.sql";
}

RelationOptions QueryService::BaseFor(
    const std::string& relation_name) const {
  RelationOptions base = options_.relation_base;
  base.schema = nullptr;
  base.specializations = {};
  if (options_.data_dir.empty()) {
    base.storage.directory.clear();
  } else {
    base.storage.directory =
        options_.data_dir + "/relations/" + relation_name;
  }
  return base;
}

Status QueryService::Open() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (options_.data_dir.empty()) return Status::OK();
  TS_RETURN_NOT_OK(EnsureDirectory(options_.data_dir + "/relations"));
  const std::string path = SchemasPath();
  if (!std::filesystem::exists(path)) return Status::OK();

  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '", path, "' for reading");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  // DDL contains no string literals, so top-level ';' splitting is safe
  // (mirrors Catalog::LoadSchemas, which we bypass to give each relation
  // its own storage directory).
  for (const std::string& statement : Split(buffer.str(), ';')) {
    bool blank = true;
    for (char c : statement) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    TS_ASSIGN_OR_RETURN(ParsedRelation parsed, ParseCreateRelation(statement));
    const std::string& name = parsed.schema->relation_name();
    RelationOptions base = BaseFor(name);
    TS_RETURN_NOT_OK(EnsureDirectory(base.storage.directory));
    TS_RETURN_NOT_OK(
        catalog_.CreateRelationFromDdl(statement, std::move(base)).status());
  }
  return Status::OK();
}

Status QueryService::PersistSchemas() {
  if (options_.data_dir.empty()) return Status::OK();
  return catalog_.SaveSchemas(SchemasPath());
}

Result<std::string> QueryService::ExecuteCreate(const std::string& statement) {
  // Parse first: the relation name picks the storage directory that
  // CreateRelationFromDdl needs up front.
  TS_ASSIGN_OR_RETURN(ParsedRelation parsed, ParseCreateRelation(statement));
  const std::string& name = parsed.schema->relation_name();
  RelationOptions base = BaseFor(name);
  if (!base.storage.directory.empty()) {
    TS_RETURN_NOT_OK(EnsureDirectory(base.storage.directory));
  }
  TS_RETURN_NOT_OK(
      catalog_.CreateRelationFromDdl(statement, std::move(base)).status());
  TS_RETURN_NOT_OK(PersistSchemas());
  TS_COUNTER_INC("service.ddl");
  return "created relation " + name + "\n";
}

Result<std::string> QueryService::ExecuteDrop(const std::string& statement) {
  // DROP RELATION <name>
  size_t i = 0;
  auto word = [&]() {
    while (i < statement.size() &&
           std::isspace(static_cast<unsigned char>(statement[i]))) {
      ++i;
    }
    std::string w;
    while (i < statement.size() &&
           (std::isalnum(static_cast<unsigned char>(statement[i])) ||
            statement[i] == '_')) {
      w.push_back(statement[i]);
      ++i;
    }
    return w;
  };
  word();  // DROP
  std::string name = word();
  std::string upper = name;
  for (auto& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (upper == "RELATION") name = word();
  while (i < statement.size() &&
         (std::isspace(static_cast<unsigned char>(statement[i])) ||
          statement[i] == ';')) {
    ++i;
  }
  if (name.empty() || i < statement.size()) {
    return Status::InvalidArgument("expected DROP RELATION <name>");
  }
  TS_RETURN_NOT_OK(catalog_.Drop(name));
  TS_RETURN_NOT_OK(PersistSchemas());
  TS_COUNTER_INC("service.ddl");
  // Evict the relation's labeled latency series and recycle its label slot:
  // a create/drop churn must not grow the /metrics scrape.
  TS_METRICS_ONLY(QueryLatencyFamily::Instance().ReleaseRelation(name);)
  return "dropped relation " + name + "\n";
}

Result<std::string> QueryService::Execute(const std::string& statement,
                                          TraceContext* trace) {
  if (IsWriteStatement(statement)) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const std::string verb = FirstVerb(statement);
    if (verb == "CREATE") return ExecuteCreate(statement);
    if (verb == "DROP") return ExecuteDrop(statement);
    TS_ASSIGN_OR_RETURN(QueryOutput out,
                        ExecuteQuery(catalog_, statement, trace));
    return out.ToString();
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  TS_ASSIGN_OR_RETURN(QueryOutput out,
                      ExecuteQuery(catalog_, statement, trace));
  return out.ToString();
}

std::vector<std::string> QueryService::RelationNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return catalog_.RelationNames();
}

}  // namespace tempspec
