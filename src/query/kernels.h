// Branch-free columnar scan kernels over the relation's StampStore.
//
// Every Figure-1 pane is a pair of half-plane tests over (tt, vt); the paper
// argues a declared pane licenses cheaper "query processing strategies".
// This library is the data-parallel half of that claim: one kernel per pane
// family, each a loop over flat int64 stamp columns whose per-row predicate
// is a boolean product (no short-circuit branches), evaluated block-wise
// into a selection bitmap. The bitmap layout is what the morsel-driven
// ParallelFor consumes: each morsel runs KernelScan over its contiguous
// candidate block and appends matches in ascending position order, so the
// engine's serial/parallel byte-identity contract is preserved unchanged.
//
// What each specialized kernel skips, relative to the generic two-half-plane
// predicate (vt_start < hi && lo < vt_end && existence):
//   degenerate_columnar  — events inside a granule-aligned tt window: vt_end
//                          is derivable (at + 1), so one vt column decides.
//   banded_columnar      — fixed vt - tt band (bounded/determined panes):
//                          same single-column event test inside the banded
//                          tt window.
//   monotone_columnar    — sorted vt_start: both valid-time half-planes
//                          collapse into a binary-searched subrange
//                          (MonotoneBounds); the scan tests existence only.
//   existence_columnar   — current/rollback queries: no valid-time test at
//                          all, and for current belief only tt_end is read.
//
// Existence unification: an element exists at `as_of` iff
// tt_start <= as_of && as_of < tt_end, and is current iff tt_end ==
// INT64_MAX. Passing kCurrentAsOf (INT64_MAX - 1) makes the single as-of
// predicate cover both cases — tt_start <= INT64_MAX - 1 always holds for
// real stamps, and INT64_MAX - 1 < tt_end iff the element is current — so
// no kernel carries a current-vs-as-of branch in its inner loop.
#ifndef TEMPSPEC_QUERY_KERNELS_H_
#define TEMPSPEC_QUERY_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "query/plan.h"
#include "relation/stamp_store.h"

namespace tempspec {

/// \brief As-of sentinel selecting current belief: real transaction stamps
/// are always < INT64_MAX - 1, so `tt_start <= kCurrentAsOf` is vacuous and
/// `kCurrentAsOf < tt_end` holds exactly for open existence intervals.
inline constexpr int64_t kCurrentAsOf = INT64_MAX - 1;

/// \brief Binary-searches the sorted vt_start column for the candidate
/// subrange [first, last) whose valid times fall in [lo, hi). Precondition:
/// the relation declared a non-decreasing/sequential ordering (the column is
/// sorted in position order).
std::pair<size_t, size_t> MonotoneBounds(const StampColumns& cols, int64_t lo,
                                         int64_t hi);

/// \brief Runs `kernel` over the contiguous candidate positions
/// [begin, end) of `cols`, appending matching positions to `out` in
/// ascending order. [lo, hi) is the queried valid range (ignored by
/// kExistence; already applied by MonotoneBounds for kMonotone); `as_of` is
/// the existence instant, kCurrentAsOf for current belief.
///
/// kRowAtATime is not accepted here — it has no columnar form; callers keep
/// their Element-walk loop for it (and for non-contiguous candidates).
void KernelScan(ScanKernel kernel, const StampColumns& cols, size_t begin,
                size_t end, int64_t lo, int64_t hi, int64_t as_of,
                std::vector<uint64_t>* out);

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_KERNELS_H_
