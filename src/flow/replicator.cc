#include "flow/replicator.h"

#include <algorithm>

namespace tempspec {

Result<Band> PropagatedBand(const Band& source, Duration min_delay,
                            Duration max_delay) {
  if (min_delay.IsNegative()) {
    return Status::InvalidArgument("propagation delay cannot be negative");
  }
  auto cmp = CompareOffsets(min_delay, max_delay);
  if (!cmp.has_value() || *cmp > 0) {
    return Status::InvalidArgument("require min_delay <= max_delay (decidably)");
  }
  Band out = Band::All();
  // vt - tt_dst = (vt - tt_src) - d, d ∈ [d_min, d_max]:
  //   lower: lo - d_max; upper: hi - d_min. Openness carries over.
  if (source.lower()) {
    out = out.Intersect(
        Band::AtLeast(source.lower()->offset - max_delay, source.lower()->open));
  }
  if (source.upper()) {
    out = out.Intersect(
        Band::AtMost(source.upper()->offset - min_delay, source.upper()->open));
  }
  return out;
}

Result<EventSpecialization> PropagatedSpec(const EventSpecialization& source,
                                           Duration min_delay,
                                           Duration max_delay) {
  TS_ASSIGN_OR_RETURN(Band band,
                      PropagatedBand(source.band(), min_delay, max_delay));
  // Degenerate sources become bands, not degenerate targets, so classify
  // the propagated band directly.
  const EventSpecKind kind = EventSpecialization::ClassifyBand(band);
  auto offset_of = [](const std::optional<BandBound>& b) {
    return b ? b->offset : Duration::Zero();
  };
  switch (kind) {
    case EventSpecKind::kGeneral:
      return EventSpecialization::General();
    case EventSpecKind::kRetroactive:
      return EventSpecialization::Retroactive();
    case EventSpecKind::kDelayedRetroactive:
      return EventSpecialization::DelayedRetroactive(-offset_of(band.upper()));
    case EventSpecKind::kPredictive:
      return EventSpecialization::Predictive();
    case EventSpecKind::kEarlyPredictive:
      return EventSpecialization::EarlyPredictive(offset_of(band.lower()));
    case EventSpecKind::kRetroactivelyBounded:
      return EventSpecialization::RetroactivelyBounded(-offset_of(band.lower()));
    case EventSpecKind::kPredictivelyBounded:
      return EventSpecialization::PredictivelyBounded(offset_of(band.upper()));
    case EventSpecKind::kStronglyRetroactivelyBounded:
      return EventSpecialization::StronglyRetroactivelyBounded(
          -offset_of(band.lower()));
    case EventSpecKind::kDelayedStronglyRetroactivelyBounded:
      return EventSpecialization::DelayedStronglyRetroactivelyBounded(
          -offset_of(band.upper()), -offset_of(band.lower()));
    case EventSpecKind::kStronglyPredictivelyBounded:
      return EventSpecialization::StronglyPredictivelyBounded(
          offset_of(band.upper()));
    case EventSpecKind::kEarlyStronglyPredictivelyBounded:
      return EventSpecialization::EarlyStronglyPredictivelyBounded(
          offset_of(band.lower()), offset_of(band.upper()));
    case EventSpecKind::kStronglyBounded:
      return EventSpecialization::StronglyBounded(-offset_of(band.lower()),
                                                  offset_of(band.upper()));
    case EventSpecKind::kDegenerate:
      return EventSpecialization::Degenerate();
  }
  return Status::Internal("unreachable");
}

Status Replicator::Sync() {
  const auto& entries = source_->backlog().entries();

  struct PendingOp {
    TimePoint target_tt;
    const BacklogEntry* entry;
  };
  std::vector<PendingOp> pending;
  const int64_t min_us = min_delay_.micros();
  const int64_t max_us =
      std::max(min_us, max_delay_.micros() - kMicrosPerSecond);
  // Plan target stamps first so per-object causality can be enforced before
  // ordering: a delete is scheduled strictly after its insert's planned
  // stamp even when the independent delays would invert them.
  std::unordered_map<ElementSurrogate, TimePoint> planned_insert_tt =
      target_insert_tt_;
  for (size_t i = position_; i < entries.size(); ++i) {
    const BacklogEntry& entry = entries[i];
    const Duration delay = Duration::Micros(rng_.Uniform(min_us, max_us));
    TimePoint target_tt = entry.tt + delay;
    if (entry.op == BacklogOpType::kInsert) {
      planned_insert_tt[entry.element.element_surrogate] = target_tt;
    } else {
      auto it = planned_insert_tt.find(entry.target);
      if (it == planned_insert_tt.end()) {
        return Status::Internal("delete of unreplicated element #", entry.target);
      }
      if (!(target_tt > it->second)) {
        target_tt = TimePoint::FromMicros(it->second.micros() + 1);
      }
    }
    pending.push_back(PendingOp{target_tt, &entry});
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingOp& a, const PendingOp& b) {
                     return a.target_tt < b.target_tt;
                   });

  for (const PendingOp& op : pending) {
    if (op.entry->op == BacklogOpType::kInsert) {
      const Element& src = op.entry->element;
      target_clock_->SetTo(op.target_tt);
      TS_ASSIGN_OR_RETURN(ElementSurrogate target_id,
                          target_->Insert(src.object_surrogate, src.valid,
                                          src.attributes));
      surrogate_map_[src.element_surrogate] = target_id;
      TS_ASSIGN_OR_RETURN(Element replicated, target_->GetElement(target_id));
      target_insert_tt_[src.element_surrogate] = replicated.tt_begin;
    } else {
      auto it = surrogate_map_.find(op.entry->target);
      if (it == surrogate_map_.end()) {
        return Status::Internal(
            "delete of element #", op.entry->target,
            " arrived before its insert was replicated — delay bounds must "
            "not exceed the source's insert/delete spacing");
      }
      // Per-object causality: a delete never lands before its insert.
      TimePoint tt = op.target_tt;
      const TimePoint inserted_at = target_insert_tt_[op.entry->target];
      if (!(tt > inserted_at)) {
        tt = TimePoint::FromMicros(inserted_at.micros() + 1);
      }
      target_clock_->SetTo(tt);
      TS_RETURN_NOT_OK(target_->LogicalDelete(it->second));
    }
  }
  position_ = entries.size();
  return Status::OK();
}

Result<ElementSurrogate> Replicator::TargetOf(
    ElementSurrogate source_surrogate) const {
  auto it = surrogate_map_.find(source_surrogate);
  if (it == surrogate_map_.end()) {
    return Status::NotFound("element #", source_surrogate,
                            " has not been replicated");
  }
  return it->second;
}

}  // namespace tempspec
