// Half-open time intervals [begin, end).
//
// Used both for valid-time interval stamps (Section 3.3) and for element
// existence intervals [tt_b, tt_d) (Section 2).
#ifndef TEMPSPEC_TIMEX_INTERVAL_H_
#define TEMPSPEC_TIMEX_INTERVAL_H_

#include <algorithm>
#include <ostream>
#include <string>

#include "timex/duration.h"
#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief A half-open interval [begin, end) on the shared time line.
/// begin <= end; begin == end denotes the empty interval at begin.
class TimeInterval {
 public:
  constexpr TimeInterval() : begin_(TimePoint::Min()), end_(TimePoint::Max()) {}
  constexpr TimeInterval(TimePoint begin, TimePoint end) : begin_(begin), end_(end) {}

  static Result<TimeInterval> Make(TimePoint begin, TimePoint end) {
    if (end < begin) {
      return Status::InvalidArgument("interval end ", end.ToString(),
                                     " precedes begin ", begin.ToString());
    }
    return TimeInterval(begin, end);
  }

  /// \brief The whole time line.
  static constexpr TimeInterval All() { return TimeInterval(); }
  /// \brief [begin, forever) — the existence interval of a current element.
  static constexpr TimeInterval From(TimePoint begin) {
    return TimeInterval(begin, TimePoint::Max());
  }

  constexpr TimePoint begin() const { return begin_; }
  constexpr TimePoint end() const { return end_; }

  constexpr bool IsEmpty() const { return begin_ >= end_; }

  constexpr bool Contains(TimePoint tp) const { return begin_ <= tp && tp < end_; }
  constexpr bool Contains(const TimeInterval& other) const {
    return begin_ <= other.begin_ && other.end_ <= end_;
  }
  constexpr bool Overlaps(const TimeInterval& other) const {
    return begin_ < other.end_ && other.begin_ < end_;
  }

  TimeInterval Intersect(const TimeInterval& other) const {
    return TimeInterval(std::max(begin_, other.begin_), std::min(end_, other.end_));
  }

  /// \brief Fixed duration end - begin; meaningful only for non-sentinel ends.
  Duration Length() const { return end_ - begin_; }

  std::string ToString() const {
    return "[" + begin_.ToString() + ", " + end_.ToString() + ")";
  }

  friend constexpr bool operator==(const TimeInterval&, const TimeInterval&) = default;

 private:
  TimePoint begin_;
  TimePoint end_;
};

inline std::ostream& operator<<(std::ostream& os, const TimeInterval& iv) {
  return os << iv.ToString();
}

}  // namespace tempspec

#endif  // TEMPSPEC_TIMEX_INTERVAL_H_
