#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/serde.h"
#include "util/failpoint.h"

namespace tempspec {

namespace {
constexpr size_t kRecordHeaderSize = 4 + 4 + 8 + 8;  // len, crc, epoch, lsn
}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path,
                                                           SyncMode mode,
                                                           uint32_t sync_every,
                                                           uint64_t epoch) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open WAL '", path, "': ", std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat WAL '", path, "': ", std::strerror(err));
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, mode, sync_every == 0 ? 1 : sync_every));
  wal->epoch_ = epoch;
  // Bytes already on disk at open are presumed durable.
  wal->file_size_ = static_cast<uint64_t>(st.st_size);
  wal->synced_bytes_ = wal->file_size_;
  // Scan once to learn the next LSN (replay discards payloads).
  auto replayed = wal->Replay(
      [](uint64_t, std::string_view) { return Status::OK(); });
  TS_RETURN_NOT_OK(replayed.status());
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
#ifdef TEMPSPEC_FAILPOINTS
    // Simulated machine crash: bytes appended since the last successful
    // fsync are not guaranteed durable. Cut the file at a seeded point
    // within the unsynced tail — anywhere from "nothing lost" to "torn
    // mid-record" — before recovery reopens it.
    FailpointRegistry& registry = FailpointRegistry::Instance();
    if (registry.crashed()) {
      struct stat st;
      if (::fstat(fd_, &st) == 0) {
        const uint64_t size = static_cast<uint64_t>(st.st_size);
        const uint64_t lo = synced_bytes_ < size ? synced_bytes_ : size;
        const uint64_t cut = registry.CrashCut(lo, size);
        if (cut < size && ::ftruncate(fd_, static_cast<off_t>(cut)) != 0) {
          // If the cut silently failed, the "machine crash" model degrades:
          // the unsynced tail survives and a crash test would assert
          // against the wrong file contents. Fail hard instead.
          std::fprintf(stderr,
                       "tempspec: simulated-crash ftruncate of '%s' to %llu "
                       "bytes failed: %s\n",
                       path_.c_str(), static_cast<unsigned long long>(cut),
                       std::strerror(errno));
          std::abort();
        }
      }
    }
#endif
    ::close(fd_);
  }
}

Status WriteAheadLog::AppendOnce(std::string* record, bool* wrote_any) {
  size_t want = record->size();
  Status injected = Status::OK();
#ifdef TEMPSPEC_FAILPOINTS
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    FailpointRegistry::WriteDecision decision =
        registry.OnWrite("wal.append", record->data(), record->size());
    want = decision.write_len;
    injected = std::move(decision.after);
  }
#endif
  size_t done = 0;
  while (done < want) {
    ssize_t n = ::write(fd_, record->data() + done, want - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      file_size_ += done;
      return Status::IOError("WAL append failed: ", std::strerror(errno));
    }
    if (n > 0) *wrote_any = true;
    done += static_cast<size_t>(n);
  }
  file_size_ += done;
  if (!injected.ok()) return injected;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Append(std::string_view payload) {
  const uint64_t lsn = next_lsn_;
  // The CRC covers the epoch and LSN as well as the payload: recovery
  // routes records by epoch and LSN, so an unprotected header byte would
  // turn silent corruption into a bogus replay.
  std::string body;
  body.reserve(16 + payload.size());
  Encoder body_enc(&body);
  body_enc.PutU64(epoch_);
  body_enc.PutU64(lsn);
  body.append(payload.data(), payload.size());
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  Encoder enc(&record);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(body));
  record += body;

  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) IoRetryBackoff(attempt);
    bool wrote_any = false;
    st = AppendOnce(&record, &wrote_any);
    if (st.ok()) break;
    // A partial record may already be on disk: retrying would append a
    // duplicate after the torn bytes, so only retry clean failures.
    if (wrote_any || !st.IsIOError()) break;
  }
  TS_RETURN_NOT_OK(st);
  bytes_written_ += record.size();
  ++next_lsn_;
  TS_COUNTER_INC("storage.wal.appends");
  TS_COUNTER_ADD("storage.wal.bytes_appended", record.size());
  TS_FLIGHT(FlightCategory::kWal, FlightCode::kWalAppend, lsn, record.size(),
            "");

  if (mode_ == SyncMode::kAlways ||
      (mode_ == SyncMode::kEveryN && ++appends_since_sync_ >= sync_every_)) {
    TS_RETURN_NOT_OK(Sync());
  }
  return lsn;
}

Status WriteAheadLog::SyncOnce() {
#ifdef TEMPSPEC_FAILPOINTS
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    FailpointRegistry::SyncDecision decision = registry.OnSync("wal.sync");
    if (!decision.after.ok()) return std::move(decision.after);
    // Dropped sync: report success without syncing; the durable watermark
    // stays put, so a later simulated crash can lose this tail.
    if (decision.skip) return Status::OK();
  }
#endif
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("WAL fsync failed: ", std::strerror(errno));
  }
  synced_bytes_ = file_size_;
  TS_COUNTER_INC("storage.wal.syncs");
  TS_FLIGHT(FlightCategory::kWal, FlightCode::kWalSync, synced_bytes_, 0, "");
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  appends_since_sync_ = 0;
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) IoRetryBackoff(attempt);
    st = SyncOnce();
    if (st.ok() || !st.IsIOError()) break;
  }
  return st;
}

Result<uint64_t> WriteAheadLog::Replay(
    const std::function<Status(uint64_t, std::string_view)>& fn) {
  // Read the whole file via a separate descriptor so the append offset is
  // untouched.
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot reopen WAL '", path_, "' for replay");
  }
  std::string content;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    content.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  uint64_t count = 0;
  size_t pos = 0;
  uint64_t max_lsn_seen = next_lsn_ == 0 ? 0 : next_lsn_ - 1;
  bool any = next_lsn_ > 0;
  while (pos + kRecordHeaderSize <= content.size()) {
    Decoder dec(std::string_view(content).substr(pos, kRecordHeaderSize));
    const uint32_t len = dec.GetU32().ValueOrDie();
    const uint32_t crc = dec.GetU32().ValueOrDie();
    const uint64_t epoch = dec.GetU64().ValueOrDie();
    const uint64_t lsn = dec.GetU64().ValueOrDie();
    if (pos + kRecordHeaderSize + len > content.size()) break;  // torn tail
    const std::string_view body(content.data() + pos + 8,
                                16 + len);  // epoch+lsn+payload
    if (Crc32(body) != crc) break;  // corrupt tail
    if (epoch == epoch_) {
      const std::string_view payload = body.substr(16);
      TS_RETURN_NOT_OK(fn(lsn, payload));
      if (!any || lsn > max_lsn_seen) {
        max_lsn_seen = lsn;
        any = true;
      }
      ++count;
    }
    // Records of another epoch belong to a superseded generation (a
    // compaction whose Reset never became durable): walk past them without
    // delivering or letting their old LSNs advance the counter.
    pos += kRecordHeaderSize + len;
  }
  if (any) next_lsn_ = max_lsn_seen + 1;
  return count;
}

Status WriteAheadLog::Reset() {
#ifdef TEMPSPEC_FAILPOINTS
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    FailpointRegistry::SyncDecision decision = registry.OnSync("wal.reset");
    if (!decision.after.ok()) return std::move(decision.after);
    // Dropped reset: the truncation never reaches the disk (modeling a
    // crash that loses it). The stale records stay in the file; recovery
    // must skip them by LSN rather than replaying them twice.
    if (decision.skip) return Status::OK();
  }
#endif
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("WAL truncate failed: ", std::strerror(errno));
  }
  // Make the truncation itself durable: fsync the inode, then the parent
  // directory entry, so a crash right after Reset cannot resurrect the old
  // tail.
  if (::fsync(fd_) != 0) {
    return Status::IOError("WAL fsync after truncate failed: ",
                           std::strerror(errno));
  }
  TS_RETURN_NOT_OK(FsyncParentDirectory(path_));
  bytes_written_ = 0;
  file_size_ = 0;
  synced_bytes_ = 0;
  TS_FLIGHT(FlightCategory::kWal, FlightCode::kWalReset, epoch_, 0, "");
  return Status::OK();
}

}  // namespace tempspec
