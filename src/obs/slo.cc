#include "obs/slo.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace tempspec {

namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Per-relation merge of every {kind, protocol} series.
struct MergedHistogram {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snapshot;
    snapshot.count = count;
    snapshot.sum = sum;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      if (buckets[b] != 0) snapshot.buckets.emplace_back(b, buckets[b]);
    }
    return snapshot;
  }

  /// Observations in buckets lying *entirely* above `threshold_micros`
  /// (straddling buckets count as conforming — the watchdog is lenient,
  /// see the header comment).
  uint64_t CountAbove(uint64_t threshold_micros) const {
    uint64_t above = 0;
    for (size_t b = 1; b < kHistogramBuckets; ++b) {
      const uint64_t bucket_min = HistogramBucketUpperBound(b - 1) + 1;
      if (bucket_min > threshold_micros) above += buckets[b];
    }
    return above;
  }
};

}  // namespace

std::string SloVerdict::ToJson() const {
  std::string out = "{\"relation\":\"" + JsonEscape(relation) + "\"";
  out += ",\"objective_p99_ms\":" + FormatDouble(objective_p99_ms);
  out += ",\"total\":{\"count\":" + std::to_string(total_count);
  out += ",\"violations\":" + std::to_string(total_violations);
  out += ",\"p99_micros\":" + std::to_string(total_p99_micros);
  out += ",\"verdict\":\"" + std::string(total_ok ? "ok" : "violated") + "\"}";
  out += ",\"window\":{\"count\":" + std::to_string(window_count);
  out += ",\"violations\":" + std::to_string(window_violations);
  out += ",\"p99_micros\":" + std::to_string(window_p99_micros);
  out += ",\"burn_rate\":" + FormatDouble(burn_rate);
  out += ",\"verdict\":\"" + std::string(burning ? "burning" : "ok") + "\"}}";
  return out;
}

SloRegistry& SloRegistry::Instance() {
  static SloRegistry* instance = new SloRegistry();
  return *instance;
}

void SloRegistry::Declare(const std::string& relation, double p99_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  objectives_[relation] = p99_ms;
}

void SloRegistry::Remove(const std::string& relation) {
  std::lock_guard<std::mutex> lock(mu_);
  objectives_.erase(relation);
  baselines_.erase(relation);
}

std::map<std::string, double> SloRegistry::Objectives() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objectives_;
}

bool SloRegistry::DeclareFromSpec(const std::string& spec) {
  bool all_ok = true;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      all_ok = false;
      continue;
    }
    const std::string relation = entry.substr(0, eq);
    char* parse_end = nullptr;
    const double p99_ms = std::strtod(entry.c_str() + eq + 1, &parse_end);
    if (parse_end == entry.c_str() + eq + 1 || *parse_end != '\0' ||
        p99_ms <= 0.0) {
      all_ok = false;
      continue;
    }
    Declare(relation, p99_ms);
  }
  return all_ok;
}

std::vector<SloVerdict> SloRegistry::Evaluate() {
  // Merge the labeled family per relation outside the registry lock.
  std::map<std::string, MergedHistogram> merged;
  for (const LabeledSeries& series : QueryLatencyFamily::Instance().Scrape()) {
    MergedHistogram& m = merged[series.relation];
    m.count += series.latency.count;
    m.sum += series.latency.sum;
    for (const auto& [bucket, n] : series.latency.buckets) {
      m.buckets[bucket] += n;
    }
  }

  std::vector<SloVerdict> verdicts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [relation, p99_ms] : objectives_) {
      SloVerdict v;
      v.relation = relation;
      v.objective_p99_ms = p99_ms;
      const uint64_t objective_micros =
          static_cast<uint64_t>(p99_ms * 1000.0);
      const auto it = merged.find(relation);
      if (it != merged.end()) {
        const MergedHistogram& m = it->second;
        v.total_count = m.count;
        v.total_violations = m.CountAbove(objective_micros);
        v.total_p99_micros = m.Snapshot().Percentile(0.99);
      }
      v.total_ok = static_cast<double>(v.total_violations) <=
                   kBudgetFraction * static_cast<double>(v.total_count);

      Baseline& base = baselines_[relation];
      // Counters are monotone, but Reset()/test isolation can rewind them;
      // treat a rewind as a fresh baseline.
      if (v.total_count < base.count || v.total_violations < base.violations) {
        base = Baseline{};
      }
      v.window_count = v.total_count - base.count;
      v.window_violations = v.total_violations - base.violations;
      if (v.window_count > 0) {
        v.burn_rate = (static_cast<double>(v.window_violations) /
                       static_cast<double>(v.window_count)) /
                      kBudgetFraction;
        v.window_p99_micros = v.total_p99_micros;
      }
      v.burning = v.burn_rate > 1.0;
      base.count = v.total_count;
      base.violations = v.total_violations;
      verdicts.push_back(std::move(v));
    }
    current_ = verdicts;
  }

  // The tempspec.slo.* gauge family. Per-relation gauge names are bounded by
  // the declared objectives (operator configuration), not by DDL churn, so
  // the process-lifetime registry handles cannot grow without bound.
  TS_METRICS_ONLY({
    MetricsRegistry& registry = MetricsRegistry::Instance();
    registry.GetGauge("tempspec.slo.relations")
        .Set(static_cast<int64_t>(verdicts.size()));
    int64_t burning = 0;
    for (const SloVerdict& v : verdicts) {
      if (v.burning) ++burning;
      registry.GetGauge("tempspec.slo.ok." + v.relation).Set(v.total_ok ? 1 : 0);
      registry.GetGauge("tempspec.slo.burn_rate_x100." + v.relation)
          .Set(static_cast<int64_t>(v.burn_rate * 100.0));
      registry.GetGauge("tempspec.slo.window_p99_micros." + v.relation)
          .Set(static_cast<int64_t>(v.window_p99_micros));
    }
    registry.GetGauge("tempspec.slo.burning").Set(burning);
  });

  return verdicts;
}

std::vector<SloVerdict> SloRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::string SloRegistry::RenderHealthJson() {
  const std::vector<SloVerdict> verdicts = Evaluate();
  std::string out = "{\"unix_micros\":" + std::to_string(NowUnixMicros());
  out += ",\"slos\":[";
  bool first = true;
  for (const SloVerdict& v : verdicts) {
    if (!first) out += ',';
    first = false;
    out += v.ToJson();
  }
  out += "],\"series\":[";
  first = true;
  for (const LabeledSeries& series : QueryLatencyFamily::Instance().Scrape()) {
    if (!first) out += ',';
    first = false;
    out += "{\"relation\":\"" + JsonEscape(series.relation) + "\"";
    out += ",\"kind\":\"" + JsonEscape(series.kind) + "\"";
    out += ",\"protocol\":\"" + JsonEscape(series.protocol) + "\"";
    out += ",\"count\":" + std::to_string(series.latency.count);
    out += ",\"p50_micros\":" + std::to_string(series.latency.Percentile(0.50));
    out += ",\"p99_micros\":" + std::to_string(series.latency.Percentile(0.99));
    out += '}';
  }
  out += "]}";
  return out;
}

void SloRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  objectives_.clear();
  baselines_.clear();
  current_.clear();
}

}  // namespace tempspec
