#include "storage/page.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

TEST(SlottedPageTest, InsertAndGet) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  EXPECT_EQ(sp.slot_count(), 0);
  ASSERT_OK_AND_ASSIGN(uint16_t s0, sp.Insert("alpha"));
  ASSERT_OK_AND_ASSIGN(uint16_t s1, sp.Insert("beta"));
  EXPECT_EQ(s0, 0);
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(sp.slot_count(), 2);
  EXPECT_EQ(sp.Get(0).ValueOrDie(), "alpha");
  EXPECT_EQ(sp.Get(1).ValueOrDie(), "beta");
  EXPECT_TRUE(sp.Get(2).status().IsOutOfRange());
}

TEST(SlottedPageTest, EmptyRecordsAllowed) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  ASSERT_OK_AND_ASSIGN(uint16_t s, sp.Insert(""));
  EXPECT_EQ(sp.Get(s).ValueOrDie(), "");
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  const std::string record(100, 'x');
  size_t inserted = 0;
  while (sp.Fits(record.size())) {
    ASSERT_OK(sp.Insert(record).status());
    ++inserted;
  }
  // 100-byte records + 4-byte slots in an 8 KiB page: expect ~78.
  EXPECT_GT(inserted, 70u);
  EXPECT_TRUE(sp.Insert(record).status().IsOutOfRange());
  // Everything is still readable.
  for (uint16_t i = 0; i < inserted; ++i) {
    EXPECT_EQ(sp.Get(i).ValueOrDie(), record);
  }
}

TEST(SlottedPageTest, OversizeRecordRejected) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  EXPECT_TRUE(sp.Insert(std::string(kPageSize, 'x')).status().IsInvalidArgument());
}

TEST(SlottedPageTest, RandomizedRoundTrip) {
  Random rng(11);
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  std::vector<std::string> inserted;
  while (true) {
    std::string record = rng.NextString(rng.Uniform(0, 200));
    if (!sp.Fits(record.size())) break;
    ASSERT_OK(sp.Insert(record).status());
    inserted.push_back(std::move(record));
  }
  ASSERT_GT(inserted.size(), 10u);
  for (size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_EQ(sp.Get(static_cast<uint16_t>(i)).ValueOrDie(), inserted[i]);
  }
}

}  // namespace
}  // namespace tempspec
