// Online specialization-drift monitoring.
//
// A declared specialization is only a sound basis for "selecting appropriate
// storage structures, indexing techniques, and query processing strategies"
// while the data actually stays inside its declared Figure-1 region. The
// ConstraintChecker *enforces* the declaration — it rejects escaping
// updates, which also means enforcement masks drift: a relation whose
// workload has shifted looks clean in its extension while inserts bounce.
// The drift monitor is the observational counterpart. It watches every
// *attempted* insert (it runs before the checker) and maintains, per
// relation:
//
//   * occupancy counts over the twelve Figure-1 panes
//     (EnumerateEventRegions: which enumerated regions each (tt, vt) stamp
//     falls in — panes overlap, so one stamp counts in several);
//   * the tightest EventSpecKind consistent with everything observed
//     (IncrementalEventProfile — the streaming form of the inference
//     engine);
//   * the declared kind (the intersection of the declared insertion-anchored
//     event bands, classified), the Figure-2 lattice distance between
//     declared and observed, and a count of outright violations (stamps
//     outside the declared band — exactly the inserts enforcement rejects).
//
// The state machine per relation: UNDECLARED (no event specs) ->
// CONFORMING (observed kind is the declared kind or a descendant, distance
// measured on the lattice) -> DRIFTED (observed escaped to a kind that is
// not a descendant; violations > 0). Drift never un-happens: the observed
// band only widens. The catalog Advisor folds the report into its notes,
// and `SHOW SPECIALIZATION <relation>` renders it.
//
// Compile-out contract: the class always compiles; the relation's ingest
// call site is wrapped in TS_METRICS_ONLY, and the monitor's own registry
// updates are compiled under TEMPSPEC_METRICS — an OFF tree observes
// nothing and registers nothing.
#ifndef TEMPSPEC_SPEC_DRIFT_H_
#define TEMPSPEC_SPEC_DRIFT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "spec/enumeration.h"
#include "spec/event_spec.h"
#include "spec/inference.h"
#include "spec/specialization.h"
#include "timex/granularity.h"

namespace tempspec {

/// \brief Occupancy of one Figure-1 pane.
struct DriftRegionCount {
  std::string construction;  // the pane's derivation, from the enumeration
  EventSpecKind kind;        // the taxonomy type the pane classifies to
  uint64_t count = 0;        // stamps observed inside the pane's band
};

/// \brief Point-in-time drift state of one relation.
struct DriftReport {
  std::string relation;
  /// True when the relation declared at least one insertion-anchored
  /// isolated-event specialization.
  bool has_declaration = false;
  EventSpecKind declared = EventSpecKind::kGeneral;
  /// Tightest kind consistent with the observed stamps (kGeneral with
  /// observed_count == 0 means "no data yet", not "observed general").
  EventSpecKind observed = EventSpecKind::kGeneral;
  uint64_t observed_count = 0;
  /// Attempted inserts whose stamp fell outside the declared band. These are
  /// exactly the inserts the ConstraintChecker rejects, so they are NOT in
  /// the extension — drift shows what enforcement masks.
  uint64_t violations = 0;
  /// Undirected Figure-2 lattice distance declared -> observed (0 when they
  /// coincide or no data has arrived).
  size_t lattice_distance = 0;
  /// True while every attempted stamp satisfied the declared bands
  /// (violations == 0). Exact, unlike a kind-level lattice comparison:
  /// an observed strongly-bounded band can exceed the declared
  /// strongly-bounded deltas while the kinds still coincide.
  bool conforming = true;
  /// The twelve panes, in enumeration order.
  std::vector<DriftRegionCount> regions;
  /// The full streaming profile (offsets, band, degenerate flag).
  EventProfile profile;

  /// \brief Multi-line human-readable rendering (SHOW SPECIALIZATION).
  std::string ToString() const;
};

/// \brief Per-relation drift monitor. Observe() is called from the
/// relation's ingest path (single writer); Report() may race with it from
/// SHOW / the advisor, so both take one mutex — the monitor is per *query*,
/// not per element batch, on the read side, and one lock per insert is
/// noise next to the WAL append the insert just paid for.
class RelationDriftMonitor {
 public:
  /// \brief `declared` supplies the insertion-anchored event bands;
  /// `granularity` drives the degenerate test; the deltas instantiate the
  /// twelve panes (defaults match the Figure-1 property-test oracle).
  RelationDriftMonitor(std::string relation_name,
                       const SpecializationSet& declared,
                       Granularity granularity,
                       Duration delta_small = Duration::Seconds(30),
                       Duration delta_large = Duration::Seconds(90));

  /// \brief Folds one attempted insert stamp into the monitor and publishes
  /// the per-relation gauges/counters to the metrics registry.
  void Observe(TimePoint tt, TimePoint vt);

  DriftReport Report() const;

  /// \brief True when the relation is in the DRIFTED state: it declared a
  /// specialization and at least one attempted stamp violated it. Much
  /// cheaper than Report() (one lock, no pane copy) — the optimizer calls
  /// this once per plan to decide whether the declaration is still a sound
  /// basis for a specialized strategy.
  bool Drifted() const;

  const std::string& relation_name() const { return relation_name_; }

 private:
  /// Granularity-aware membership test (the degenerate pane and the
  /// degenerate declaration use chronon-equality at the relation's
  /// granularity, like ConstraintChecker; every other band is the raw
  /// Figure-1 region test).
  bool SatisfiesDeclared(TimePoint tt, TimePoint vt) const;

  const std::string relation_name_;
  const Granularity granularity_;
  std::vector<EnumeratedRegion> panes_;
  std::vector<EventSpecialization> declared_specs_;  // insertion-anchored
  bool has_declaration_ = false;
  EventSpecKind declared_kind_ = EventSpecKind::kGeneral;

  mutable std::mutex mu_;
  IncrementalEventProfile profile_;
  std::vector<uint64_t> pane_counts_;
  uint64_t violations_ = 0;
};

/// \brief Lattice distance between two event kinds on the Figure-2 taxonomy
/// (0 when equal; every kind is connected, so this cannot fail).
size_t EventKindLatticeDistance(EventSpecKind a, EventSpecKind b);

/// \brief True when `observed` is `declared` or one of its descendants in
/// the Figure-2 taxonomy (i.e. data of the observed kind still satisfies
/// the declared kind).
bool EventKindConforms(EventSpecKind declared, EventSpecKind observed);

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_DRIFT_H_
