// Deterministic fault-injection seam for the storage stack.
//
// A failpoint is a named IO site ("wal.append", "disk.write_page", ...)
// that the storage layer consults before performing the real syscall.
// Tests arm a site with a FaultSpec — fault kind, the operation count at
// which it fires, and a seed — and the registry then injects short writes,
// bit flips, dropped fsyncs, transient EIO, or a clean simulated crash at
// exactly that operation. Once a crash-type fault fires, the registry enters
// a sticky "crashed" state and every subsequent storage operation fails,
// which lets a test stop a workload at a deterministic point, tear the
// store down, and re-open it to exercise recovery.
//
// The registry and its API always exist, so tests compile regardless of
// build flags; the *call sites* inside WriteAheadLog / DiskManager are
// compiled only under TEMPSPEC_FAILPOINTS (a CMake option, default ON; turn
// it OFF for benchmark builds). With the option off the storage hot paths
// contain no failpoint code at all — zero overhead — and
// FailpointsCompiledIn() returns false so crash tests can fail loudly
// instead of passing vacuously.
#ifndef TEMPSPEC_UTIL_FAILPOINT_H_
#define TEMPSPEC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace tempspec {

enum class FaultKind : uint8_t {
  kShortWrite,      // write a seeded prefix of the buffer, then crash
  kCorruptBit,      // flip one seeded bit in the buffer, write it, then crash
  kDropSync,        // from the trigger on, syncs report success without syncing
  kTransientError,  // the next `transient_ops` matching ops fail with EIO
  kCrash,           // fail the operation cleanly and enter the crashed state
};

const char* FaultKindToString(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  /// The fault fires on the trigger_at'th evaluation of its site (0-based).
  uint64_t trigger_at = 0;
  /// kTransientError: how many consecutive evaluations fail before the site
  /// behaves normally again.
  uint32_t transient_ops = 1;
  /// Drives cut points (kShortWrite), bit choices (kCorruptBit), and the
  /// crash-time WAL tail cut. Same spec, same workload => same faults.
  uint64_t seed = 0;
};

/// \brief Monotonic totals since the last ResetCounters(). A crash harness
/// prints these so a build whose failpoints never fired fails loudly.
struct FaultCounters {
  uint64_t evaluated = 0;         // On* calls while any site was armed
  uint64_t injected = 0;          // faults actually delivered
  uint64_t short_writes = 0;
  uint64_t corrupt_writes = 0;
  uint64_t dropped_syncs = 0;
  uint64_t transient_errors = 0;
  uint64_t crashes = 0;
};

/// \brief True when the storage layer was compiled with TEMPSPEC_FAILPOINTS,
/// i.e. arming a site can actually inject faults.
bool FailpointsCompiledIn();

/// \brief Process-wide failpoint state. Thread-safe; the armed check on the
/// hot path is a single relaxed atomic load.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  /// \brief Disarms every site and clears the crashed state. Counters are
  /// kept (see ResetCounters) so a harness can aggregate across trials.
  void DisarmAll();

  /// \brief Fast check: any site armed, or crashed state latched.
  bool active() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0 ||
           crashed_.load(std::memory_order_relaxed);
  }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  FaultCounters counters() const;
  void ResetCounters();

  // -- Site evaluation (called from storage IO paths) ------------------------

  /// \brief What a write site must do: write the first `write_len` bytes of
  /// the (possibly mutated) buffer, then return `after`.
  struct WriteDecision {
    size_t write_len;
    Status after;
  };
  WriteDecision OnWrite(std::string_view site, char* buf, size_t len);

  /// \brief What a sync site must do: `skip` pretends success without
  /// syncing; otherwise return `after` (OK = perform the real sync).
  struct SyncDecision {
    bool skip;
    Status after;
  };
  SyncDecision OnSync(std::string_view site);

  /// \brief Read sites can only fail (transiently or as a crash).
  Status OnRead(std::string_view site);

  /// \brief Seeded choice in [lo, hi] for crash-time file mutation (the WAL
  /// uses it to cut its unsynced tail at an arbitrary byte).
  uint64_t CrashCut(uint64_t lo, uint64_t hi);

 private:
  FailpointRegistry() = default;

  struct ArmedSite {
    FaultSpec spec;
    uint64_t hits = 0;
    uint32_t transients_left = 0;
    bool fired = false;
    std::mt19937_64 rng;
  };

  /// \brief Latches the crashed state; returns the error every operation
  /// sees from then on.
  Status EnterCrashedLocked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, ArmedSite> sites_;
  std::atomic<int> armed_sites_{0};
  std::atomic<bool> crashed_{false};
  std::mt19937_64 crash_rng_{0x7465'6d70'7370'6563ull};
  FaultCounters counters_;
};

/// \brief Retry policy for transient IO errors: storage operations retry
/// IOError failures up to kMaxIoAttempts times with a short exponential
/// backoff, so injected (and real) transient EIO is survived, not fatal.
constexpr int kMaxIoAttempts = 4;
void IoRetryBackoff(int attempt);

}  // namespace tempspec

#endif  // TEMPSPEC_UTIL_FAILPOINT_H_
