// Snapshot cache with differential replay.
//
// Rollback on a pure backlog is O(operations before tt). Caching periodic
// materialized states and replaying only the differential suffix is the
// technique of the paper's [JMRS90] reference ("using caching, cache
// indexing, and differential techniques to efficiently support transaction
// time"); bench_e9_rollback measures the effect.
#ifndef TEMPSPEC_STORAGE_SNAPSHOT_H_
#define TEMPSPEC_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "storage/backlog.h"

namespace tempspec {

/// \brief Periodic materialized states over a BacklogStore.
class SnapshotManager {
 public:
  /// \brief Takes a snapshot every `interval` appended operations.
  SnapshotManager(const BacklogStore* store, size_t interval)
      : store_(store), interval_(interval == 0 ? 1 : interval) {}

  /// \brief Catches up with the store, materializing any snapshots that are
  /// due. Call after appends (any batching is fine).
  void Refresh();

  /// \brief Historical state at `tt`: nearest cached snapshot at or before
  /// `tt`, plus differential replay of the remaining operations.
  std::vector<Element> StateAt(TimePoint tt) const;

  size_t snapshot_count() const { return snapshots_.size(); }

  /// \brief Approximate resident size of the cache, in elements.
  size_t cached_elements() const;

 private:
  struct Snapshot {
    TimePoint tt;                     // transaction time covered
    size_t position;                  // operations applied (prefix length)
    std::unordered_map<ElementSurrogate, Element> state;
  };

  const BacklogStore* store_;
  size_t interval_;
  size_t consumed_ = 0;  // operations folded into `running_`
  std::unordered_map<ElementSurrogate, Element> running_;
  std::vector<Snapshot> snapshots_;  // ordered by position
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_SNAPSHOT_H_
