// Specialization-aware planning.
#ifndef TEMPSPEC_QUERY_OPTIMIZER_H_
#define TEMPSPEC_QUERY_OPTIMIZER_H_

#include <functional>
#include <optional>
#include <utility>

#include "model/schema.h"
#include "query/plan.h"
#include "spec/specialization.h"

namespace tempspec {

/// \brief Chooses execution strategies from the declared specializations.
class Optimizer {
 public:
  /// \brief `drifted`, when supplied, is consulted once per plan: a true
  /// return means the drift monitor reports DRIFTED (declared specialization
  /// with observed violations), and the planner ignores the declaration —
  /// general strategy, generic kernel — rather than trust a band the
  /// workload has escaped. The executor wires this to
  /// TemporalRelation::IsDrifted().
  Optimizer(const SpecializationSet& specs, const Schema& schema,
            std::function<bool()> drifted = nullptr);

  /// \brief Plans a timeslice (historical) query at valid time `vt`.
  ///
  /// Strategy ladder (first applicable wins):
  ///  1. degenerate           -> rollback equivalence on the append-only store
  ///  2. any fixed band       -> transaction-time window [vt - hi, vt - lo]
  ///  3. non-decr/sequential  -> binary search on the insertion order
  ///  4. otherwise            -> valid-time interval index
  PlanChoice PlanTimeslice(TimePoint vt) const;

  /// \brief Plans a valid-time range query over [lo, hi).
  PlanChoice PlanValidRange(TimePoint lo, TimePoint hi) const;

  /// \brief The combined insertion-anchored band over the queried valid
  /// endpoint(s), when one is declared with fixed offsets.
  std::optional<Band> CombinedFixedBand() const;

  /// \brief True if valid times are guaranteed non-decreasing in insertion
  /// order (globally non-decreasing or sequential is declared).
  bool ValidTimesMonotone() const;

  /// \brief True if the relation is declared degenerate.
  bool IsDegenerate() const;

  /// \brief Candidate-count floor below which a parallel scan is not worth
  /// its dispatch cost: morsel hand-off and buffer merging run in the low
  /// microseconds, which a serial scan of this many elements undercuts.
  static constexpr size_t kParallelCutoff = 16384;

  /// \brief Cost cutoff for the executor: parallelize only when the chosen
  /// strategy leaves at least `cutoff` candidate elements to examine
  /// (kParallelCutoff unless the executor overrides it, as tests do).
  bool ShouldParallelize(size_t candidate_elements,
                         size_t cutoff = kParallelCutoff) const {
    return candidate_elements >= cutoff;
  }

 private:
  const SpecializationSet& specs_;
  const Schema& schema_;
  std::function<bool()> drifted_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_OPTIMIZER_H_
