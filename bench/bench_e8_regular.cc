// E8 — Regular relations admit unit-multiple time-stamp encoding
// (Sections 3.2/3.3; the Advisor's EncodingAdvice::kDeltaUnit).
//
// Encodes the transaction-time column of (a) a strictly regular sampling
// relation, (b) a non-strictly regular one, and (c) an irregular baseline,
// with raw / delta / unit-multiple encodings. Counters report bytes per
// stamp; timings report encode cost.
#include "bench_common.h"
#include "storage/encoding.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

std::vector<TimePoint> StrictRegularColumn(int64_t n) {
  std::vector<TimePoint> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(TimePoint::FromSeconds(1000 + i * 10));
  }
  return out;
}

std::vector<TimePoint> NonStrictRegularColumn(int64_t n) {
  Random rng(3);
  std::vector<TimePoint> out;
  out.reserve(n);
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    k += rng.Uniform(1, 6);
    out.push_back(TimePoint::FromSeconds(1000 + k * 10));
  }
  return out;
}

std::vector<TimePoint> IrregularColumn(int64_t n) {
  Random rng(5);
  std::vector<TimePoint> out;
  out.reserve(n);
  int64_t us = 0;
  for (int64_t i = 0; i < n; ++i) {
    us += rng.Uniform(1, 20'000'000);
    out.push_back(TimePoint::FromMicros(us));
  }
  return out;
}

void ReportBytes(benchmark::State& state, size_t bytes, size_t n) {
  state.counters["bytes_per_stamp"] =
      benchmark::Counter(static_cast<double>(bytes) / n);
}

void BM_Encode_StrictRegular_Raw(benchmark::State& state) {
  const auto column = StrictRegularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = EncodeTimestampsRaw(column);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Encode_StrictRegular_Delta(benchmark::State& state) {
  const auto column = StrictRegularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = EncodeTimestampsDelta(column);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Encode_StrictRegular_Unit(benchmark::State& state) {
  const auto column = StrictRegularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = Require(EncodeTimestampsUnit(column, 10 * kMicrosPerSecond));
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Encode_NonStrictRegular_Unit(benchmark::State& state) {
  const auto column = NonStrictRegularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = Require(EncodeTimestampsUnit(column, 10 * kMicrosPerSecond));
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Encode_Irregular_Raw(benchmark::State& state) {
  const auto column = IrregularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = EncodeTimestampsRaw(column);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Encode_Irregular_Delta(benchmark::State& state) {
  const auto column = IrregularColumn(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto data = EncodeTimestampsDelta(column);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  ReportBytes(state, bytes, column.size());
}

void BM_Decode_StrictRegular_Unit(benchmark::State& state) {
  const auto column = StrictRegularColumn(state.range(0));
  const auto data = Require(EncodeTimestampsUnit(column, 10 * kMicrosPerSecond));
  for (auto _ : state) {
    auto back = Require(DecodeTimestampsUnit(data));
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations() * column.size());
}

}  // namespace

BENCHMARK(BM_Encode_StrictRegular_Raw)->Arg(65536);
BENCHMARK(BM_Encode_StrictRegular_Delta)->Arg(65536);
BENCHMARK(BM_Encode_StrictRegular_Unit)->Arg(65536);
BENCHMARK(BM_Encode_NonStrictRegular_Unit)->Arg(65536);
BENCHMARK(BM_Encode_Irregular_Raw)->Arg(65536);
BENCHMARK(BM_Encode_Irregular_Delta)->Arg(65536);
BENCHMARK(BM_Decode_StrictRegular_Unit)->Arg(65536);

TEMPSPEC_BENCH_MAIN("e8_regular");
