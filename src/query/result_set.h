// Zero-copy query results: positions into the relation's element store.
//
// Every query strategy ultimately selects a subset of the relation's element
// array; copying each matching Element (tuple values included) into the
// result vector dominated query cost for large answers. A ResultSet instead
// records the matching *positions*, in ascending position order, over a span
// that stays valid as long as the relation is not mutated. Callers iterate
// the view directly, or Materialize() — optionally in parallel — when an
// owning std::vector<Element> is required (the pre-existing QueryExecutor
// signatures do exactly that, as thin adapters).
#ifndef TEMPSPEC_QUERY_RESULT_SET_H_
#define TEMPSPEC_QUERY_RESULT_SET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "model/element.h"

namespace tempspec {

class ThreadPool;

/// \brief A non-owning, position-ordered view of query matches.
///
/// Validity: the view borrows `base` (the relation's element store); any
/// mutation of the relation invalidates it. Treat it like an iterator.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::span<const Element> base, std::vector<uint64_t> positions)
      : base_(base), positions_(std::move(positions)) {}

  size_t size() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }

  /// \brief Positions into the base span, ascending.
  const std::vector<uint64_t>& positions() const { return positions_; }

  /// \brief The i-th matching element (no copy).
  const Element& operator[](size_t i) const { return base_[positions_[i]]; }

  /// \brief Iteration over the matching elements, no copies.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Element;
    using difference_type = std::ptrdiff_t;
    using pointer = const Element*;
    using reference = const Element&;

    const_iterator(const ResultSet* set, size_t i) : set_(set), i_(i) {}
    reference operator*() const { return (*set_)[i_]; }
    pointer operator->() const { return &(*set_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++i_;
      return copy;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    const ResultSet* set_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

  /// \brief Copies the matches into an owning vector, in position order.
  /// With a pool, the copies are morsel-parallel (the order — and therefore
  /// the bytes — are identical either way).
  std::vector<Element> Materialize(ThreadPool* pool = nullptr) const;

 private:
  std::span<const Element> base_;
  std::vector<uint64_t> positions_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_RESULT_SET_H_
