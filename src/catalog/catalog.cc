#include "catalog/catalog.h"

#include <fstream>
#include <sstream>

#include "lang/ddl.h"
#include "util/string_util.h"

namespace tempspec {

Status Catalog::SaveSchemas(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '", path, "' for writing");
  }
  for (const auto& [name, rel] : relations_) {
    out << ToDdl(rel->schema(), rel->specializations()) << "\n\n";
  }
  out.flush();
  if (!out) {
    return Status::IOError("write to '", path, "' failed");
  }
  return Status::OK();
}

Result<size_t> Catalog::LoadSchemas(const std::string& path,
                                    const RelationOptions& base) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '", path, "' for reading");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  // DDL contains no string literals, so top-level ';' splitting is safe.
  size_t count = 0;
  for (const std::string& statement : Split(buffer.str(), ';')) {
    if (Trim(statement).empty()) continue;
    RelationOptions options = base;
    TS_RETURN_NOT_OK(CreateRelationFromDdl(statement, options).status());
    ++count;
  }
  return count;
}

Result<TemporalRelation*> Catalog::CreateRelationFromDdl(const std::string& ddl,
                                                         RelationOptions base) {
  TS_ASSIGN_OR_RETURN(ParsedRelation parsed, ParseCreateRelation(ddl));
  base.schema = std::move(parsed.schema);
  base.specializations = std::move(parsed.specializations);
  return CreateRelation(std::move(base));
}

Result<TemporalRelation*> Catalog::CreateRelation(RelationOptions options) {
  if (!options.schema) {
    return Status::InvalidArgument("relation requires a schema");
  }
  const std::string name = options.schema->relation_name();
  if (relations_.count(name)) {
    return Status::AlreadyExists("relation '", name, "' already registered");
  }
  TS_ASSIGN_OR_RETURN(auto relation, TemporalRelation::Open(std::move(options)));
  TemporalRelation* ptr = relation.get();
  relations_[name] = std::move(relation);
  return ptr;
}

Result<TemporalRelation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '", name, "'");
  }
  return it->second.get();
}

Result<AdvisorReport> Catalog::AdviseFor(const std::string& name) const {
  TS_ASSIGN_OR_RETURN(TemporalRelation * rel, Get(name));
  AdvisorReport report = Advise(rel->schema(), rel->specializations());
  // Fold in drift: advice derived from the declaration is only sound while
  // the data stays inside its declared region.
  const DriftReport drift = rel->DriftState();
  if (drift.has_declaration && drift.observed_count > 0) {
    if (!drift.conforming || drift.violations > 0) {
      report.notes.push_back(
          std::string("DRIFT: declared ") +
          EventSpecKindToString(drift.declared) + " but observed " +
          EventSpecKindToString(drift.observed) + " (lattice distance " +
          std::to_string(drift.lattice_distance) + ", " +
          std::to_string(drift.violations) +
          " attempted violations) — the advice above may no longer fit the "
          "workload");
    } else if (drift.lattice_distance > 0) {
      report.notes.push_back(
          std::string("drift: data is strictly tighter than declared (") +
          EventSpecKindToString(drift.observed) + ", lattice distance " +
          std::to_string(drift.lattice_distance) +
          ") — a tighter declaration would unlock more advice");
    }
  }
  return report;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '", name, "'");
  }
  return Status::OK();
}

std::string Catalog::Describe() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += rel->schema().ToString() + "\n";
    out += rel->specializations().ToString();
    out += Advise(rel->schema(), rel->specializations()).ToString();
    out += "\n";
  }
  return out;
}

}  // namespace tempspec
