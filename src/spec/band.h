// Bands: regions of the (transaction time, valid time) plane bounded by
// lines parallel to vt = tt.
//
// The completeness argument of Section 3.1 observes that, under the paper's
// assumptions, every isolated-event specialization is a *connected region of
// the plane bounded by at most two lines parallel to vt = tt*. Such a region
// is fully described by a (possibly unbounded) interval of the offset
// vt - tt: we call it a Band. All eleven specialized event types plus the
// general type are bands; Figure 1 is the picture of twelve of them.
//
// Offsets are Durations so that calendric bounds ("one month") keep their
// calendar-dependent meaning: a bound is always *applied to* the transaction
// time of the element being checked, never converted to a fixed number.
#ifndef TEMPSPEC_SPEC_BAND_H_
#define TEMPSPEC_SPEC_BAND_H_

#include <optional>
#include <string>

#include "timex/duration.h"
#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief One side of a band: the line vt = tt + offset, with the side being
/// closed (point on the line included) or open.
struct BandBound {
  Duration offset;
  bool open = false;  // paper assumption 4: <=-versions by default

  friend bool operator==(const BandBound&, const BandBound&) = default;
};

/// \brief An interval of the offset vt - tt; absent bounds are infinite.
///
/// satisfied(tt, vt)  iff  tt + lower (<|<=) vt (<|<=) tt + upper.
class Band {
 public:
  /// \brief The unrestricted band (the general temporal relation).
  Band() = default;

  static Band All() { return Band(); }
  /// \brief vt >= tt + offset (or > when open).
  static Band AtLeast(Duration offset, bool open = false) {
    Band b;
    b.lower_ = BandBound{offset, open};
    return b;
  }
  /// \brief vt <= tt + offset (or < when open).
  static Band AtMost(Duration offset, bool open = false) {
    Band b;
    b.upper_ = BandBound{offset, open};
    return b;
  }
  /// \brief tt + lo <= vt <= tt + hi (closed unless flagged open).
  static Band Between(Duration lo, Duration hi, bool lower_open = false,
                      bool upper_open = false) {
    Band b;
    b.lower_ = BandBound{lo, lower_open};
    b.upper_ = BandBound{hi, upper_open};
    return b;
  }
  /// \brief vt = tt + offset exactly.
  static Band Exactly(Duration offset) { return Between(offset, offset); }

  const std::optional<BandBound>& lower() const { return lower_; }
  const std::optional<BandBound>& upper() const { return upper_; }

  bool IsUnrestricted() const { return !lower_ && !upper_; }

  /// \brief True if the stamp pair lies inside the band. Calendric offsets
  /// are applied to `tt` via calendar arithmetic.
  bool Contains(TimePoint tt, TimePoint vt) const;

  /// \brief Emptiness is only decidable for fixed offsets; calendric bands
  /// report nullopt unless trivially non-empty.
  std::optional<bool> IsEmpty() const;

  /// \brief Three-valued subset test: true/false when decidable, nullopt when
  /// calendric offsets make the comparison anchor-dependent. Band containment
  /// is exactly specialization implication for isolated-event types.
  std::optional<bool> SubsetOf(const Band& other) const;

  /// \brief Conservative intersection: picks the tighter bound on each side
  /// (when offsets are calendric-incomparable, keeps this band's bound).
  Band Intersect(const Band& other) const;

  /// \brief e.g. "(-inf, +0]", "[-30s, +0]", "[+3d, +7d]".
  std::string ToString() const;

  friend bool operator==(const Band&, const Band&) = default;

 private:
  std::optional<BandBound> lower_;
  std::optional<BandBound> upper_;
};

/// \brief Compares two signed duration offsets when possible. Fixed vs fixed
/// is exact; comparisons involving calendar months use the 28..31-day month
/// range and return nullopt when the ranges overlap.
std::optional<int> CompareOffsets(Duration a, Duration b);

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_BAND_H_
