// Thin POSIX socket helpers shared by the network plane: an owning fd
// wrapper plus the bind/listen/nonblocking plumbing that was previously
// inlined in obs/exporter.cc. Nothing here knows about HTTP or frames —
// protocol logic lives in http.h / frame.h, connection lifecycle in
// server.h.
#ifndef TEMPSPEC_NET_SOCKET_H_
#define TEMPSPEC_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/result.h"

namespace tempspec {

/// \brief Owning file descriptor: closes on destruction, move-only. A
/// default-constructed or moved-from instance holds -1 and closes nothing.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Reset(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.Release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// \brief Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  /// \brief Closes the held fd (if any) and holds -1 afterwards.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// \brief Creates a non-blocking IPv4 listening socket bound to
/// `bind_address:port` (port 0 picks an ephemeral port; read it back with
/// LocalPort). SO_REUSEADDR is set so restarts do not wait out TIME_WAIT.
Result<OwnedFd> ListenTcp(const std::string& bind_address, uint16_t port,
                          int backlog);

/// \brief The locally bound port of a socket (resolves port 0 after bind).
Result<uint16_t> LocalPort(int fd);

/// \brief Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

/// \brief Disables Nagle's algorithm (TCP_NODELAY) — request/response
/// protocols want the reply on the wire immediately.
void SetNoDelay(int fd);

}  // namespace tempspec

#endif  // TEMPSPEC_NET_SOCKET_H_
