// The backlog representation of a temporal relation.
//
// Section 2 lists admissible physical representations; we implement the
// backlog model of [JMRS90] ("a backlog relation of insertion, modification,
// and deletion operations (tuples) with single transaction time-stamps"):
// every update is an appended, transaction-time-stamped operation, and any
// historical state is reproduced by replaying the prefix of operations up to
// the requested transaction time. Snapshot caching and differential replay
// (snapshot.h) accelerate the reproduction, mirroring the caching/
// differential techniques the paper cites.
//
// Durability: each operation is written to the WAL before being applied;
// Checkpoint() packs applied operations into the slotted page file and
// resets the WAL. Open() recovers by reading the page file and replaying
// the WAL tail.
//
// Crash-recovery protocol (exercised by tests/storage/crash_recovery_test.cc):
//   - WAL record LSNs equal global operation indices. The page file holds a
//     CRC-guarded prefix of the operation history; its length is *derived*
//     by scanning (never trusted from a header), so a torn checkpoint can
//     only shorten it. The scan quarantines everything from the first
//     damaged page onward — truncating the file, not just stopping — so a
//     post-recovery checkpoint can never strand durable batches behind a
//     still-damaged page.
//   - Each checkpoint batch starts on a fresh page, so checkpointing never
//     rewrites a page whose records the WAL no longer covers.
//   - Checkpoint order: persist pages, fsync, then reset the WAL (truncate +
//     fsync file and directory). A crash between the two leaves overlapping
//     copies; recovery skips WAL records with lsn < the scanned page count
//     and rejects any LSN gap as corruption.
//   - Compaction (ReplaceAll) rewrites the page file through a side file
//     adopted by atomic rename, under a bumped generation epoch stamped
//     into the header and every WAL record: a crash resolves to exactly the
//     old or exactly the new generation, and stale WAL records (old epoch,
//     old LSN numbering) are discarded at replay.
//   - The header records a format version; unknown versions are rejected at
//     open instead of being mis-recovered as an empty store.
//   - After any unrecoverable IO failure the store turns read-only
//     (fail-stop): later appends could otherwise land beyond a torn WAL
//     tail and be silently unreachable at replay.
#ifndef TEMPSPEC_STORAGE_BACKLOG_H_
#define TEMPSPEC_STORAGE_BACKLOG_H_

#include <memory>
#include <string>
#include <vector>

#include "model/element.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/wal.h"
#include "util/result.h"

namespace tempspec {

class TraceContext;

enum class BacklogOpType : uint8_t {
  kInsert = 1,
  kLogicalDelete = 2,
};

/// \brief One operation of the backlog. A modification is represented, per
/// Section 2, as a logical deletion followed by an insertion with a fresh
/// element surrogate.
struct BacklogEntry {
  BacklogOpType op = BacklogOpType::kInsert;
  TimePoint tt;               // transaction time of the operation
  Element element;            // the inserted element (op == kInsert)
  ElementSurrogate target = kInvalidElementSurrogate;  // op == kLogicalDelete

  std::string Encode() const;
  static Result<BacklogEntry> Decode(std::string_view payload);
};

/// \brief Append-only operation store with optional durability.
class BacklogStore {
 public:
  struct Options {
    /// Empty = in-memory only (no WAL, no page file).
    std::string directory;
    SyncMode sync_mode = SyncMode::kNone;
    uint32_t sync_every = 64;
    size_t buffer_pool_pages = 64;
  };

  /// \brief Opens a store, recovering any persisted operations. The
  /// recovered entries are available via entries().
  static Result<std::unique_ptr<BacklogStore>> Open(Options options);

  /// \brief Appends one operation (WAL first when durable).
  Status Append(const BacklogEntry& entry);

  /// \brief All operations, in transaction-time (= append) order.
  const std::vector<BacklogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// \brief Replays operations with tt <= `tt` and returns the historical
  /// state: all elements alive at `tt`, with their (open) deletion stamps.
  std::vector<Element> MaterializeState(TimePoint tt) const;

  /// \brief Reconstructs the full bitemporal element set (every element ever
  /// inserted, with its final existence interval) — used on recovery.
  std::vector<Element> ReconstructElements() const;

  /// \brief Packs all in-memory operations into the page file and resets the
  /// WAL. No-op for in-memory stores.
  Status Checkpoint();

  /// \brief Replaces the whole operation history (backlog compaction, used
  /// by vacuuming). Durable stores are rewritten crash-atomically: the new
  /// generation is built in a side file and adopted by rename under a
  /// bumped epoch. No page guards may be outstanding. An optional trace
  /// span receives the side_build / rename / wal_reset stage timings.
  Status ReplaceAll(std::vector<BacklogEntry> entries,
                    TraceContext* trace = nullptr);

  bool durable() const { return wal_ != nullptr; }
  uint64_t persisted_entries() const { return persisted_entries_; }
  /// \brief Generation number of the on-disk state; bumped by ReplaceAll.
  uint64_t epoch() const { return epoch_; }
  const BufferPool* buffer_pool() const { return pool_.get(); }
  const WriteAheadLog* wal() const { return wal_.get(); }
  /// \brief True once an unrecoverable IO failure turned the store
  /// read-only; reopen from disk to recover.
  bool io_failed() const { return io_failed_; }

  /// \brief Total encoded size of all operations (storage-cost metric for
  /// the benches).
  size_t EncodedBytes() const;

 private:
  BacklogStore() = default;

  Status RecoverFromPages();
  Status WriteHeaderPage(BufferPool* pool, uint64_t epoch);
  Status CheckpointInternal(TraceContext* trace);
  Status PersistRange(BufferPool* pool, size_t begin, size_t end);

  size_t buffer_pool_pages_ = 64;

  std::vector<BacklogEntry> entries_;
  uint64_t persisted_entries_ = 0;
  uint64_t epoch_ = 0;
  bool io_failed_ = false;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<WriteAheadLog> wal_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_BACKLOG_H_
