// Engine-wide metrics: monotonic counters, gauges, and log-scale histograms.
//
// The paper's systems claim — specialization semantics "may be used for
// selecting appropriate storage structures, indexing techniques, and query
// processing strategies" — is only testable if the engine can *show* that a
// chosen strategy did less work. This registry is the evidence channel: the
// storage stack counts buffer-pool hits and WAL syncs, the execution engine
// counts per-strategy queries and elements examined, and the advisor counts
// which strategy it recommends per specialization. Benches and EXPLAIN
// ANALYZE scrape a consistent snapshot.
//
// Hot-path design: each counter/histogram is a fixed array of cache-line-
// padded shards; a thread picks its shard once (thread-local index) and then
// every update is a single relaxed atomic add — no locks, no false sharing.
// Scrape() sums the shards. Gauges are single atomics (set semantics do not
// shard).
//
// Compile-out: the registry API always exists, so tests and tools compile
// regardless of build flags; the *call sites* use the TS_COUNTER_* /
// TS_GAUGE_* / TS_HISTOGRAM_* macros below, which compile to nothing unless
// TEMPSPEC_METRICS is defined (a CMake option, default ON — mirror of the
// TEMPSPEC_FAILPOINTS pattern). With the option off the hot paths carry zero
// metrics code and MetricsCompiledIn() returns false so conformance tests
// can detect a vacuous build instead of passing silently.
#ifndef TEMPSPEC_OBS_METRICS_H_
#define TEMPSPEC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tempspec {

/// \brief True when the engine was compiled with TEMPSPEC_METRICS, i.e. the
/// instrumented call sites actually record anything.
bool MetricsCompiledIn();

/// \brief Shard count for striped counters/histograms. A power of two; 16
/// shards keep contention negligible at any realistic thread count while
/// bounding the per-metric footprint (16 cache lines per counter).
constexpr size_t kMetricShards = 16;

/// \brief This thread's shard index (assigned round-robin on first use).
size_t ThisThreadMetricShard();

/// \brief Monotonic counter. Add() is lock-free and wait-free.
class MetricCounter {
 public:
  explicit MetricCounter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n) {
    shards_[ThisThreadMetricShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// \brief Sum over all shards (racy-but-monotone under concurrent writers).
  uint64_t Value() const;

  /// \brief Zeroes all shards in place (registry ResetValues()).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kMetricShards];
  std::string name_;
};

/// \brief Point-in-time value (queue depths, open handles). Set/Add only;
/// a gauge is one atomic because "last write wins" cannot be sharded.
class MetricGauge {
 public:
  explicit MetricGauge(std::string name) : name_(std::move(name)) {}

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::atomic<int64_t> value_{0};
  std::string name_;
};

/// \brief Number of histogram buckets: bucket b counts values whose bit
/// width is b, i.e. v in [2^(b-1), 2^b), with bucket 0 counting v == 0.
/// Fixed log2 scale — no configuration, so every histogram is mergeable.
constexpr size_t kHistogramBuckets = 65;

/// \brief Bucket index for a value (0 for 0, else bit_width(v)).
size_t HistogramBucketFor(uint64_t v);
/// \brief Inclusive upper bound of a bucket (used for percentile estimates).
uint64_t HistogramBucketUpperBound(size_t bucket);

/// \brief Aggregated view of one histogram at scrape time.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  /// Non-empty buckets only: (bucket index, count).
  std::vector<std::pair<size_t, uint64_t>> buckets;

  /// \brief Upper-bound estimate of the p-quantile (p in [0, 1]): the upper
  /// edge of the first bucket whose cumulative count reaches p * count.
  uint64_t Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

/// \brief Log-scale histogram with sharded buckets; Observe() is lock-free.
class MetricHistogram {
 public:
  explicit MetricHistogram(std::string name) : name_(std::move(name)) {}

  void Observe(uint64_t v) {
    Shard& s = shards_[ThisThreadMetricShard()];
    s.buckets[HistogramBucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// \brief Zeroes all shards in place (registry ResetValues()).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kHistogramBuckets]{};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kMetricShards];
  std::string name_;
};

/// \brief One consistent-enough scrape of every registered metric (each
/// individual metric is summed atomically; cross-metric skew is possible
/// under concurrent writers, as in any sampling scraper).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// \brief Counter value, 0 when absent.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  /// \brief Single-line JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"count":..,"sum":..,"p50":..,"p99":..},...}}.
  std::string ToJson() const;
};

/// \brief Process-wide metric registry. Registration (GetCounter & friends)
/// takes a mutex and is meant to be cached by call sites (the TS_* macros
/// cache in a function-local static); updates through the returned handles
/// never lock. Handles are valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  MetricCounter& GetCounter(const std::string& name);
  MetricGauge& GetGauge(const std::string& name);
  MetricHistogram& GetHistogram(const std::string& name);

  MetricsSnapshot Scrape() const;

  /// \brief Number of registered metrics (conformance tests use this to
  /// prove the OFF build registers nothing).
  size_t MetricCount() const;

  /// \brief Zeroes every counter/gauge/histogram (benches isolate runs with
  /// this). Handles stay valid; names stay registered.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

// -- Labeled metrics ---------------------------------------------------------
//
// Registry handles live for the process lifetime, so encoding a relation
// name into a registry metric name would leak one series per relation ever
// created. Labeled families instead key series on small interned label ids
// with a hard cardinality cap and id recycling: dropping a relation frees
// its label slot (and its series), and when the table is full new values
// collapse into a shared "other" bucket — a scrape is always O(live labels).

/// \brief Bounded string interner for one label dimension. Intern() of a new
/// value in a full table returns kOverflowId (rendered as "other");
/// Release() frees the value's id for reuse by the next Intern().
class LabelDim {
 public:
  static constexpr uint32_t kOverflowId = 0;

  explicit LabelDim(size_t capacity) : capacity_(capacity) {}

  /// \brief Id for `value`, allocating a slot when one is free. Threadsafe.
  uint32_t Intern(const std::string& value);

  /// \brief Frees `value`'s slot (no-op for unknown/overflow values).
  void Release(const std::string& value);

  /// \brief Label text for an id ("other" for kOverflowId and stale ids).
  std::string ValueOf(uint32_t id) const;

  /// \brief Currently interned (live) values, excluding the overflow bucket.
  size_t LiveCount() const;

  /// \brief Drops every interned value and free-list entry (test isolation).
  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint32_t next_id_ = 1;
  std::map<std::string, uint32_t> ids_;
  std::map<uint32_t, std::string> values_;
  std::vector<uint32_t> free_ids_;
};

/// \brief One labeled latency series resolved to label text at scrape time.
struct LabeledSeries {
  std::string relation;
  std::string kind;      // scan-kernel token for reads, insert/delete/ddl
  std::string protocol;  // local | http | tsp1
  HistogramSnapshot latency;  // wall micros
};

/// \brief The per-query labeled latency family behind
/// `tempspec_query_latency{relation=...,kind=...,protocol=...}`.
///
/// All operations take one mutex: the family is touched once per query (not
/// per element), so contention is bounded by request rate, and the lock
/// makes series eviction on relation drop trivially safe.
class QueryLatencyFamily {
 public:
  static constexpr size_t kRelationCapacity = 128;

  static QueryLatencyFamily& Instance();

  void Observe(const std::string& relation, const std::string& kind,
               const std::string& protocol, uint64_t wall_micros);

  /// \brief Drops every series for `relation` and recycles its label id
  /// (DROP RELATION keeps the scrape O(live relations)).
  void ReleaseRelation(const std::string& relation);

  /// \brief Every live series, sorted by (relation, kind, protocol).
  std::vector<LabeledSeries> Scrape() const;

  size_t SeriesCount() const;
  size_t LiveRelationLabels() const;

  /// \brief Drops all series and label slots (test isolation).
  void Reset();

 private:
  QueryLatencyFamily();

  struct Series {
    uint64_t buckets[kHistogramBuckets] = {};
    uint64_t sum = 0;
  };

  mutable std::mutex mu_;
  LabelDim relations_;
  LabelDim kinds_;
  LabelDim protocols_;
  // Key: relation_id << 32 | kind_id << 16 | protocol_id.
  std::map<uint64_t, Series> series_;
};

/// \brief Escapes a string for embedding in a JSON string literal (shared by
/// the snapshot, trace spans, and the bench JSON writer).
std::string JsonEscape(const std::string& s);

// -- Instrumentation macros (compiled out without TEMPSPEC_METRICS) ----------
//
// `name` must be a string literal (or at least loop-invariant): the handle
// lookup runs once per call site via a function-local static, after which
// each hit is one relaxed atomic add. For names computed at runtime (e.g.
// per-strategy counters), wrap a cached-handle table in TS_METRICS_ONLY().

#ifdef TEMPSPEC_METRICS
#define TS_METRICS_ONLY(code) code
#define TS_COUNTER_ADD(name, n)                                      \
  do {                                                               \
    static ::tempspec::MetricCounter& ts_metric_ =                   \
        ::tempspec::MetricsRegistry::Instance().GetCounter(name);    \
    ts_metric_.Add(n);                                               \
  } while (0)
#define TS_COUNTER_INC(name) TS_COUNTER_ADD(name, 1)
#define TS_GAUGE_SET(name, v)                                        \
  do {                                                               \
    static ::tempspec::MetricGauge& ts_metric_ =                     \
        ::tempspec::MetricsRegistry::Instance().GetGauge(name);      \
    ts_metric_.Set(v);                                               \
  } while (0)
#define TS_GAUGE_ADD(name, v)                                        \
  do {                                                               \
    static ::tempspec::MetricGauge& ts_metric_ =                     \
        ::tempspec::MetricsRegistry::Instance().GetGauge(name);      \
    ts_metric_.Add(v);                                               \
  } while (0)
#define TS_HISTOGRAM_OBSERVE(name, v)                                \
  do {                                                               \
    static ::tempspec::MetricHistogram& ts_metric_ =                 \
        ::tempspec::MetricsRegistry::Instance().GetHistogram(name);  \
    ts_metric_.Observe(v);                                           \
  } while (0)
#else
#define TS_METRICS_ONLY(code)
#define TS_COUNTER_ADD(name, n) \
  do {                          \
  } while (0)
#define TS_COUNTER_INC(name) \
  do {                       \
  } while (0)
#define TS_GAUGE_SET(name, v) \
  do {                        \
  } while (0)
#define TS_GAUGE_ADD(name, v) \
  do {                        \
  } while (0)
#define TS_HISTOGRAM_OBSERVE(name, v) \
  do {                                \
  } while (0)
#endif  // TEMPSPEC_METRICS

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_METRICS_H_
