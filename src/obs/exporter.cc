#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/build_info.h"
#include "obs/flight_recorder.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace tempspec {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

// HELP text escaping per the exposition format: backslash and newline only.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendHeader(std::string& out, const std::string& name,
                  const std::string& original, const char* type) {
  out += "# HELP " + name + " tempspec metric " + EscapeHelp(original) + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const char* GetEnv(const char* name) { return std::getenv(name); }

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = GetEnv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (!IsNameStartChar(name[0])) out += '_';
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "gauge");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "histogram");
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : hist.buckets) {
      cumulative += count;
      out += prom + "_bucket{le=\"" +
             std::to_string(HistogramBucketUpperBound(bucket)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += prom + "_sum " + std::to_string(hist.sum) + "\n";
    out += prom + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

TelemetryExporter::TelemetryExporter(ExporterOptions options)
    : options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("exporter already running on port ",
                                 bound_port_.load());
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("exporter socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("exporter bind address '",
                                   options_.bind_address, "' is not an IPv4 address");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::IOError("exporter bind(", options_.bind_address, ":",
                               options_.port, "): ", std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s = Status::IOError("exporter listen(): ", std::strerror(errno));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s = Status::IOError("exporter getsockname(): ", std::strerror(errno));
    ::close(fd);
    return s;
  }

  listen_fd_ = fd;
  bound_port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  server_thread_ = std::thread([this] { Serve(); });
  if (!options_.snapshot_path.empty() && options_.snapshot_period_ms > 0) {
    snapshot_thread_ = std::thread([this] { WriteSnapshots(); });
  }
  return Status::OK();
}

void TelemetryExporter::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (server_thread_.joinable()) server_thread_.join();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void TelemetryExporter::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void TelemetryExporter::HandleConnection(int fd) {
  // Read until the end of the request headers (or the buffer fills). Scrapers
  // send small GET requests; anything else still gets a well-formed response.
  std::string request;
  char buf[2048];
  while (request.size() < 16384 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) break;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  std::string method, target;
  {
    std::istringstream line(request.substr(0, request.find('\n')));
    line >> method >> target;
  }
  // Strip any query string: /metrics?x=y scrapes the same endpoint.
  if (size_t q = target.find('?'); q != std::string::npos) target.resize(q);

  std::string status = "200 OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (target == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = RenderPrometheusText(MetricsRegistry::Instance().Scrape());
  } else if (target == "/varz") {
    content_type = "application/json";
    body = "{\"build\":" + BuildConfigJson() +
           ",\"metrics\":" + MetricsRegistry::Instance().Scrape().ToJson() +
           "}\n";
  } else if (target == "/healthz") {
    body = "ok\n";
  } else if (target == "/debug/events") {
    // The flight-recorder ring, one JSON event per line (oldest first).
    body = FlightRecorder::Instance().ToJsonl();
  } else if (target == "/debug/traces") {
    // The retained span ring, one JSON object per line (oldest first).
    for (const RetainedTrace& t : RetainedTraces::Instance().Entries()) {
      body += "{\"trace_id\":" + std::to_string(t.trace_id) +
              ",\"unix_micros\":" + std::to_string(t.unix_micros) +
              ",\"trace\":" + t.json + "}\n";
    }
  } else {
    status = "404 Not Found";
    body = "not found; try /metrics, /varz, /healthz, /debug/events, "
           "/debug/traces\n";
  }

  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < response.size()) {
    ssize_t n = ::write(fd, response.data() + off, response.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

void TelemetryExporter::WriteSnapshots() {
  // Sleep in short slices so Stop() never waits a full period.
  uint64_t elapsed_ms = options_.snapshot_period_ms;  // write once at startup
  while (!stopping_.load(std::memory_order_acquire)) {
    if (elapsed_ms >= options_.snapshot_period_ms) {
      elapsed_ms = 0;
      std::ofstream out(options_.snapshot_path, std::ios::app);
      if (out) {
        out << "{\"unix_micros\":" << NowUnixMicros() << ",\"metrics\":"
            << MetricsRegistry::Instance().Scrape().ToJson() << "}\n";
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    elapsed_ms += 20;
  }
}

std::unique_ptr<TelemetryExporter> TelemetryExporter::MaybeStartFromEnv() {
  SlowQueryLog::Instance().ConfigureFromEnv();
  RetainedTraces::Instance().ConfigureFromEnv();
  FlightRecorder::MaybeInstallFromEnv();
  const char* port_env = GetEnv("TEMPSPEC_EXPORTER_PORT");
  if (port_env == nullptr || *port_env == '\0') return nullptr;

  ExporterOptions options;
  options.port = static_cast<uint16_t>(EnvU64("TEMPSPEC_EXPORTER_PORT", 9464));
  if (const char* addr = GetEnv("TEMPSPEC_EXPORTER_ADDR")) {
    if (*addr != '\0') options.bind_address = addr;
  }
  if (const char* snap = GetEnv("TEMPSPEC_EXPORTER_SNAPSHOT")) {
    options.snapshot_path = snap;
  }
  options.snapshot_period_ms =
      EnvU64("TEMPSPEC_EXPORTER_SNAPSHOT_MS", options.snapshot_period_ms);

  auto exporter = std::make_unique<TelemetryExporter>(std::move(options));
  Status s = exporter->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "tempspec exporter disabled: %s\n",
                 s.ToString().c_str());
    return nullptr;
  }
  if (const char* portfile = GetEnv("TEMPSPEC_EXPORTER_PORTFILE")) {
    if (*portfile != '\0') {
      std::ofstream out(portfile, std::ios::trunc);
      out << exporter->port() << "\n";
    }
  }
  return exporter;
}

void TelemetryExporter::LingerFromEnv() {
  uint64_t linger_ms = EnvU64("TEMPSPEC_EXPORTER_LINGER_MS", 0);
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
}

}  // namespace tempspec
