#include "relation/temporal_relation.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tempspec {

TemporalRelation::TemporalRelation(RelationOptions options)
    : schema_(std::move(options.schema)),
      specs_(std::move(options.specializations)),
      clock_(options.clock
                 ? std::move(options.clock)
                 : std::make_shared<LogicalClock>(TimePoint::FromMicros(0),
                                                  Duration::Seconds(1))),
      checker_(specs_, schema_->valid_granularity()),
      drift_(schema_->relation_name(), specs_, schema_->valid_granularity()),
      snapshot_interval_(options.snapshot_interval),
      granularity_policy_(options.granularity_policy) {}

Result<std::unique_ptr<TemporalRelation>> TemporalRelation::Open(
    RelationOptions options) {
  if (!options.schema) {
    return Status::InvalidArgument("relation requires a schema");
  }
  TS_RETURN_NOT_OK(options.specializations.ValidateFor(*options.schema));

  auto backlog_result = BacklogStore::Open(options.storage);
  TS_RETURN_NOT_OK(backlog_result.status());

  auto relation =
      std::unique_ptr<TemporalRelation>(new TemporalRelation(std::move(options)));
  relation->backlog_ = std::move(backlog_result).ValueOrDie();
  if (relation->backlog_->size() > 0) {
    TS_RETURN_NOT_OK(relation->ApplyRecoveredEntries());
  }
  // Snapshots are created after recovery so recovered operations are covered.
  if (relation->snapshot_interval_ > 0) {
    relation->snapshots_ = std::make_unique<SnapshotManager>(
        relation->backlog_.get(), relation->snapshot_interval_);
    relation->snapshots_->Refresh();
  }
  return relation;
}

Status TemporalRelation::ApplyRecoveredEntries() {
  // Rebuild the in-memory store, indexes, and constraint-checker state from
  // the recovered backlog, validating as we go.
  for (const BacklogEntry& entry : backlog_->entries()) {
    if (entry.op == BacklogOpType::kInsert) {
      const Element& e = entry.element;
      TS_RETURN_NOT_OK(e.attributes.Conforms(*schema_));
      // Recovered elements feed the drift monitor too: the observed profile
      // describes the data in the relation, not just this process's inserts.
      TS_METRICS_ONLY(drift_.Observe(e.tt_begin, e.valid.begin()));
      TS_RETURN_NOT_OK(checker_.OnInsert(e));
      by_surrogate_[e.element_surrogate] = elements_.size();
      if (partitions_.find(e.object_surrogate) == partitions_.end()) {
        object_order_.push_back(e.object_surrogate);
      }
      partitions_[e.object_surrogate].push_back(elements_.size());
      IndexElement(e, elements_.size());
      elements_.push_back(e);
      surrogates_.EnsureAbove(e.element_surrogate);
      clock_->EnsureAfter(e.tt_begin);
    } else {
      auto it = by_surrogate_.find(entry.target);
      if (it == by_surrogate_.end()) {
        return Status::Corruption("recovered delete of unknown element #",
                                  entry.target);
      }
      Element& e = elements_[it->second];
      e.tt_end = entry.tt;
      stamps_.SetTtEnd(it->second, entry.tt);
      TS_RETURN_NOT_OK(checker_.OnLogicalDelete(e));
      clock_->EnsureAfter(entry.tt);
    }
  }
  return Status::OK();
}

void TemporalRelation::IndexElement(const Element& e, size_t position) {
  // Transaction time is monotone by construction, so the tt index is always
  // append-only regardless of specialization.
  tt_index_.Append(e.tt_begin, position).Check();
  // The columnar stamp store is position-aligned with elements_: every
  // caller indexes exactly the element it is about to append (or, on vacuum
  // rebuild, position i of the compacted array), so appending here keeps the
  // columns in lockstep across insert, recovery, and vacuum.
  stamps_.Append(e);
  if (e.valid.is_event()) {
    valid_index_.Insert(e.valid.at(),
                        TimePoint::FromMicros(e.valid.at().micros() + 1),
                        position);
  } else {
    valid_index_.Insert(e.valid.begin(), e.valid.end(), position);
  }
}

Result<ElementSurrogate> TemporalRelation::Insert(ObjectSurrogate object,
                                                  ValidTime valid,
                                                  Tuple attributes) {
  return InsertAt(clock_->Next(), object, std::move(valid),
                  std::move(attributes));
}

Result<ElementSurrogate> TemporalRelation::InsertEvent(ObjectSurrogate object,
                                                       TimePoint vt,
                                                       Tuple attributes) {
  return Insert(object, ValidTime::Event(vt), std::move(attributes));
}

Result<ElementSurrogate> TemporalRelation::InsertInterval(ObjectSurrogate object,
                                                          TimePoint vt_begin,
                                                          TimePoint vt_end,
                                                          Tuple attributes) {
  TS_ASSIGN_OR_RETURN(ValidTime valid, ValidTime::Interval(vt_begin, vt_end));
  return Insert(object, valid, std::move(attributes));
}

Result<ElementSurrogate> TemporalRelation::InsertAt(TimePoint tt,
                                                    ObjectSurrogate object,
                                                    ValidTime valid,
                                                    Tuple attributes) {
  if (schema_->IsEventRelation() != valid.is_event()) {
    return Status::InvalidArgument(
        "relation '", schema_->relation_name(), "' is ",
        schema_->IsEventRelation() ? "event" : "interval",
        "-stamped; the supplied valid time is not");
  }
  TS_RETURN_NOT_OK(attributes.Conforms(*schema_));

  if (granularity_policy_ != GranularityPolicy::kIgnore) {
    const Granularity g = schema_->valid_granularity();
    const bool begin_aligned = g.Truncate(valid.begin()) == valid.begin();
    const bool end_aligned =
        valid.is_event() || g.Truncate(valid.end()) == valid.end();
    if (!begin_aligned || !end_aligned) {
      if (granularity_policy_ == GranularityPolicy::kReject) {
        return Status::InvalidArgument(
            "valid time ", valid.ToString(), " is finer than the relation's ",
            g.ToString(), " granularity");
      }
      valid = valid.is_event()
                  ? ValidTime::Event(g.Truncate(valid.at()))
                  : ValidTime::IntervalUnchecked(g.Truncate(valid.begin()),
                                                 g.Truncate(valid.end()));
    }
  }

  Element e;
  e.element_surrogate = surrogates_.Next();
  e.object_surrogate = object;
  e.tt_begin = tt;
  e.tt_end = TimePoint::Max();
  e.valid = std::move(valid);
  e.attributes = std::move(attributes);

  // Drift observation runs before enforcement on purpose: the monitor
  // counts *attempted* stamps, including the escaping inserts the checker
  // is about to reject — exactly the drift signal enforcement masks.
  TS_METRICS_ONLY(drift_.Observe(tt, e.valid.begin()));

  // Intensional enforcement: reject any element that would take the
  // extension outside the declared types.
  TS_RETURN_NOT_OK(checker_.OnInsert(e));

  BacklogEntry entry;
  entry.op = BacklogOpType::kInsert;
  entry.tt = tt;
  entry.element = e;
  TS_RETURN_NOT_OK(backlog_->Append(entry));

  by_surrogate_[e.element_surrogate] = elements_.size();
  if (partitions_.find(object) == partitions_.end()) {
    object_order_.push_back(object);
  }
  partitions_[object].push_back(elements_.size());
  IndexElement(e, elements_.size());
  const ElementSurrogate id = e.element_surrogate;
  elements_.push_back(std::move(e));
  if (snapshots_) snapshots_->Refresh();
  return id;
}

Status TemporalRelation::LogicalDelete(ElementSurrogate surrogate) {
  return LogicalDeleteAt(clock_->Next(), surrogate);
}

Status TemporalRelation::LogicalDeleteAt(TimePoint tt,
                                         ElementSurrogate surrogate) {
  auto it = by_surrogate_.find(surrogate);
  if (it == by_surrogate_.end()) {
    return Status::NotFound("no element #", surrogate, " in relation '",
                            schema_->relation_name(), "'");
  }
  Element& e = elements_[it->second];
  if (!e.IsCurrent()) {
    return Status::InvalidArgument("element #", surrogate,
                                   " was already logically deleted at ",
                                   e.tt_end.ToString());
  }

  Element probe = e;
  probe.tt_end = tt;
  TS_RETURN_NOT_OK(checker_.OnLogicalDelete(probe));

  BacklogEntry entry;
  entry.op = BacklogOpType::kLogicalDelete;
  entry.tt = tt;
  entry.target = surrogate;
  TS_RETURN_NOT_OK(backlog_->Append(entry));

  e.tt_end = tt;
  stamps_.SetTtEnd(it->second, tt);
  if (snapshots_) snapshots_->Refresh();
  return Status::OK();
}

Result<ElementSurrogate> TemporalRelation::Modify(ElementSurrogate surrogate,
                                                  ValidTime new_valid,
                                                  Tuple new_attributes) {
  // One transaction, one historical state: the deletion and the insertion
  // share a single transaction time (Section 2).
  auto it = by_surrogate_.find(surrogate);
  if (it == by_surrogate_.end()) {
    return Status::NotFound("no element #", surrogate, " in relation '",
                            schema_->relation_name(), "'");
  }
  const ObjectSurrogate object = elements_[it->second].object_surrogate;
  const TimePoint tt = clock_->Next();
  TS_RETURN_NOT_OK(LogicalDeleteAt(tt, surrogate));
  return InsertAt(tt, object, std::move(new_valid), std::move(new_attributes));
}

Result<Element> TemporalRelation::GetElement(ElementSurrogate surrogate) const {
  auto it = by_surrogate_.find(surrogate);
  if (it == by_surrogate_.end()) {
    return Status::NotFound("no element #", surrogate);
  }
  return elements_[it->second];
}

std::vector<Element> TemporalRelation::StateAt(TimePoint tt) const {
  return StateAt(tt, nullptr);
}

std::vector<Element> TemporalRelation::StateAt(TimePoint tt,
                                               ThreadPool* pool) const {
  if (snapshots_) return snapshots_->StateAt(tt, pool);
  std::vector<Element> out;
  for (const Element& e : elements_) {
    if (e.ExistsAt(tt)) out.push_back(e);
  }
  return out;
}

std::vector<Element> TemporalRelation::CurrentState() const {
  std::vector<Element> out;
  for (const Element& e : elements_) {
    if (e.IsCurrent()) out.push_back(e);
  }
  return out;
}

std::vector<const Element*> TemporalRelation::PartitionOf(
    ObjectSurrogate object) const {
  std::vector<const Element*> out;
  auto it = partitions_.find(object);
  if (it == partitions_.end()) return out;
  out.reserve(it->second.size());
  for (size_t pos : it->second) out.push_back(&elements_[pos]);
  return out;
}

std::vector<ObjectSurrogate> TemporalRelation::Objects() const {
  return object_order_;
}

Status TemporalRelation::CheckExtension() const {
  return checker_.CheckExtension(elements_);
}

Result<size_t> TemporalRelation::VacuumBefore(TimePoint horizon) {
  // Vacuum is a background span: the collect / compact / reindex stages (and
  // ReplaceAll's own side_build / rename / wal_reset stages) are timed into
  // one retained trace, so a slow vacuum is attributable after the fact.
  TraceContext span;
  span.Begin("background.vacuum");
  std::vector<Element> kept;
  kept.reserve(elements_.size());
  {
    TraceContext::StageScope stage(&span, "collect");
    for (Element& e : elements_) {
      // Only elements whose existence interval has closed can be dead;
      // current elements (open tt_d) always survive.
      if (!e.tt_end.IsMax() && e.tt_end <= horizon) continue;
      kept.push_back(std::move(e));
    }
  }
  const size_t removed = elements_.size() - kept.size();
  span.AddCounter("elements_kept", kept.size());
  span.AddCounter("elements_dropped", removed);
  if (removed == 0) {
    elements_ = std::move(kept);
    return size_t{0};
  }

  // Compact the backlog: re-derive the operation history of the survivors.
  std::vector<BacklogEntry> compacted;
  {
    TraceContext::StageScope stage(&span, "compact");
    compacted.reserve(kept.size() * 2);
    for (const Element& e : kept) {
      BacklogEntry ins;
      ins.op = BacklogOpType::kInsert;
      ins.tt = e.tt_begin;
      ins.element = e;
      ins.element.tt_end = TimePoint::Max();  // the delete is its own entry
      compacted.push_back(std::move(ins));
    }
    for (const Element& e : kept) {
      if (e.tt_end.IsMax()) continue;
      BacklogEntry del;
      del.op = BacklogOpType::kLogicalDelete;
      del.tt = e.tt_end;
      del.target = e.element_surrogate;
      compacted.push_back(std::move(del));
    }
    std::sort(compacted.begin(), compacted.end(),
              [](const BacklogEntry& a, const BacklogEntry& b) {
                return a.tt < b.tt;
              });
  }
  TS_RETURN_NOT_OK(backlog_->ReplaceAll(std::move(compacted), &span));

  // Rebuild the in-memory store and indexes.
  {
    TraceContext::StageScope reindex_stage(&span, "reindex");
    elements_ = std::move(kept);
    by_surrogate_.clear();
    partitions_.clear();
    object_order_.clear();
    tt_index_ = AppendOnlyIndex();
    valid_index_ = IntervalIndex();
    stamps_.Clear();
    for (size_t i = 0; i < elements_.size(); ++i) {
      const Element& e = elements_[i];
      by_surrogate_[e.element_surrogate] = i;
      if (partitions_.find(e.object_surrogate) == partitions_.end()) {
        object_order_.push_back(e.object_surrogate);
      }
      partitions_[e.object_surrogate].push_back(i);
      IndexElement(e, i);
    }
    if (snapshot_interval_ > 0) {
      snapshots_ =
          std::make_unique<SnapshotManager>(backlog_.get(), snapshot_interval_);
      snapshots_->Refresh();
    }
  }
  RetainedTraces::Instance().Record(span);
  return removed;
}

TemporalRelation::Stats TemporalRelation::GetStats() const {
  Stats stats;
  stats.elements = elements_.size();
  for (const Element& e : elements_) {
    if (e.IsCurrent()) ++stats.current_elements;
  }
  stats.objects = object_order_.size();
  stats.backlog_operations = backlog_->size();
  stats.backlog_bytes = backlog_->EncodedBytes();
  if (!elements_.empty()) {
    stats.first_transaction = elements_.front().tt_begin;
  }
  for (const BacklogEntry& entry : backlog_->entries()) {
    if (entry.tt > stats.last_transaction) stats.last_transaction = entry.tt;
  }
  return stats;
}

}  // namespace tempspec
