// A2 — Durability ablation: end-to-end ingest through the relation engine
// with (a) in-memory backlog, (b) WAL with OS-cache writes, (c) WAL with
// group fsync (every 64 appends), (d) WAL with fsync per append. Also
// measures checkpoint cost and recovery (open-with-replay) latency.
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "bench_common.h"
#include "util/failpoint.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    path = std::filesystem::temp_directory_path() /
           ("tempspec_bench_dur_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  static inline int counter = 0;
};

ScenarioRelation OpenIngestRelation(const std::string& dir, SyncMode mode) {
  ScenarioRelation out;
  out.clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(0),
                                             Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Require(Schema::Make("ingest",
                           {AttributeDef{"id", ValueType::kInt64,
                                         AttributeRole::kTimeInvariantKey},
                            AttributeDef{"v", ValueType::kDouble,
                                         AttributeRole::kTimeVarying}},
                           ValidTimeKind::kEvent, Granularity::Second()));
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  options.clock = out.clock;
  options.storage.directory = dir;
  options.storage.sync_mode = mode;
  out.relation = Require(TemporalRelation::Open(std::move(options)));
  return out;
}

void RunIngest(benchmark::State& state, bool durable, SyncMode mode) {
  for (auto _ : state) {
    state.PauseTiming();
    TempDir dir;
    ScenarioRelation scenario =
        OpenIngestRelation(durable ? dir.path.string() : "", mode);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      const TimePoint tt = scenario.clock->Peek();
      Require(scenario->InsertEvent(i % 16, tt - Duration::Seconds(30),
                                    Tuple{int64_t{i % 16}, 1.0})
                  .status());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Ingest_InMemory(benchmark::State& state) {
  RunIngest(state, /*durable=*/false, SyncMode::kNone);
}
void BM_Ingest_WalNoSync(benchmark::State& state) {
  RunIngest(state, /*durable=*/true, SyncMode::kNone);
}
void BM_Ingest_WalGroupSync(benchmark::State& state) {
  RunIngest(state, /*durable=*/true, SyncMode::kEveryN);
}
void BM_Ingest_WalSyncAlways(benchmark::State& state) {
  RunIngest(state, /*durable=*/true, SyncMode::kAlways);
}

void BM_CheckpointCost(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TempDir dir;
    ScenarioRelation scenario = OpenIngestRelation(dir.path.string(), SyncMode::kNone);
    for (int64_t i = 0; i < state.range(0); ++i) {
      const TimePoint tt = scenario.clock->Peek();
      Require(scenario->InsertEvent(i % 16, tt - Duration::Seconds(30),
                                    Tuple{int64_t{i % 16}, 1.0})
                  .status());
    }
    state.ResumeTiming();
    Require(scenario->Checkpoint());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RecoveryFromWal(benchmark::State& state) {
  TempDir dir;
  {
    ScenarioRelation scenario = OpenIngestRelation(dir.path.string(), SyncMode::kNone);
    for (int64_t i = 0; i < state.range(0); ++i) {
      const TimePoint tt = scenario.clock->Peek();
      Require(scenario->InsertEvent(i % 16, tt - Duration::Seconds(30),
                                    Tuple{int64_t{i % 16}, 1.0})
                  .status());
    }
  }
  for (auto _ : state) {
    ScenarioRelation scenario = OpenIngestRelation(dir.path.string(), SyncMode::kNone);
    benchmark::DoNotOptimize(scenario->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RecoveryFromPages(benchmark::State& state) {
  TempDir dir;
  {
    ScenarioRelation scenario = OpenIngestRelation(dir.path.string(), SyncMode::kNone);
    for (int64_t i = 0; i < state.range(0); ++i) {
      const TimePoint tt = scenario.clock->Peek();
      Require(scenario->InsertEvent(i % 16, tt - Duration::Seconds(30),
                                    Tuple{int64_t{i % 16}, 1.0})
                  .status());
    }
    Require(scenario->Checkpoint());
  }
  for (auto _ : state) {
    ScenarioRelation scenario = OpenIngestRelation(dir.path.string(), SyncMode::kNone);
    benchmark::DoNotOptimize(scenario->size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_Ingest_InMemory)->Arg(4096);
BENCHMARK(BM_Ingest_WalNoSync)->Arg(4096);
BENCHMARK(BM_Ingest_WalGroupSync)->Arg(4096);
BENCHMARK(BM_Ingest_WalSyncAlways)->Arg(512);  // fsync-bound: keep it short
BENCHMARK(BM_CheckpointCost)->Arg(4096);
BENCHMARK(BM_RecoveryFromWal)->Arg(8192);
BENCHMARK(BM_RecoveryFromPages)->Arg(8192);

int main(int argc, char** argv) {
  if (tempspec::FailpointsCompiledIn()) {
    std::fprintf(stderr,
                 "[bench_a2] WARNING: built with TEMPSPEC_FAILPOINTS=ON — the "
                 "storage IO paths carry fault-injection checks. Configure a "
                 "separate tree with -DTEMPSPEC_FAILPOINTS=OFF for clean "
                 "durability numbers.\n");
  }
  return tempspec::bench::BenchMain("a2_durability", argc, argv);
}
