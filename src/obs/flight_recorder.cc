#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace tempspec {

bool FlightRecorderCompiledIn() {
#ifdef TEMPSPEC_FLIGHTRECORDER
  return true;
#else
  return false;
#endif
}

const char* FlightCategoryToString(FlightCategory category) {
  switch (category) {
    case FlightCategory::kWal: return "wal";
    case FlightCategory::kPage: return "page";
    case FlightCategory::kBufferPool: return "buffer_pool";
    case FlightCategory::kCheckpoint: return "checkpoint";
    case FlightCategory::kRecovery: return "recovery";
    case FlightCategory::kCompaction: return "compaction";
    case FlightCategory::kFault: return "fault";
    case FlightCategory::kPlan: return "plan";
    case FlightCategory::kDrift: return "drift";
    case FlightCategory::kAdvisor: return "advisor";
    case FlightCategory::kServer: return "server";
  }
  return "unknown";
}

const char* FlightCodeToString(FlightCode code) {
  switch (code) {
    case FlightCode::kWalAppend: return "wal.append";
    case FlightCode::kWalSync: return "wal.sync";
    case FlightCode::kWalReset: return "wal.reset";
    case FlightCode::kPageRead: return "page.read";
    case FlightCode::kPageWrite: return "page.write";
    case FlightCode::kDiskSync: return "disk.sync";
    case FlightCode::kEviction: return "buffer_pool.evict";
    case FlightCode::kCheckpointBegin: return "checkpoint.begin";
    case FlightCode::kCheckpointEnd: return "checkpoint.end";
    case FlightCode::kRecoveryBegin: return "recovery.begin";
    case FlightCode::kRecoveryPages: return "recovery.pages";
    case FlightCode::kRecoveryQuarantine: return "recovery.quarantine";
    case FlightCode::kRecoveryWalReplay: return "recovery.wal_replay";
    case FlightCode::kRecoveryEnd: return "recovery.end";
    case FlightCode::kCompactionBegin: return "compaction.begin";
    case FlightCode::kCompactionRename: return "compaction.rename";
    case FlightCode::kCompactionEnd: return "compaction.end";
    case FlightCode::kFaultInject: return "fault.inject";
    case FlightCode::kCrashLatch: return "fault.crash_latch";
    case FlightCode::kPlanChoice: return "plan.choice";
    case FlightCode::kDriftVerdict: return "drift.verdict";
    case FlightCode::kAdvisorNote: return "advisor.note";
    case FlightCode::kServerStart: return "server.start";
    case FlightCode::kServerStop: return "server.stop";
    case FlightCode::kServerAccept: return "server.accept";
    case FlightCode::kServerReject: return "server.reject";
    case FlightCode::kServerRequest: return "server.request";
    case FlightCode::kServerDeadline: return "server.deadline";
  }
  return "unknown";
}

uint32_t ThisThreadFlightId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// ---- async-signal-safe formatting helpers (DumpToFd) ----

size_t AppendLiteral(char* buf, size_t pos, size_t cap, const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

size_t AppendU64(char* buf, size_t pos, size_t cap, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

size_t AppendI64(char* buf, size_t pos, size_t cap, int64_t v) {
  uint64_t mag;
  if (v < 0) {
    if (pos < cap) buf[pos++] = '-';
    // Negate via unsigned arithmetic so INT64_MIN is handled.
    mag = ~static_cast<uint64_t>(v) + 1;
  } else {
    mag = static_cast<uint64_t>(v);
  }
  return AppendU64(buf, pos, cap, mag);
}

}  // namespace

std::string FlightEvent::ToJson() const {
  std::string out = "{\"seq\":" + std::to_string(seq) +
                    ",\"nanos\":" + std::to_string(nanos) +
                    ",\"tid\":" + std::to_string(thread_id) + ",\"category\":\"" +
                    FlightCategoryToString(category) + "\",\"code\":\"" +
                    FlightCodeToString(code) +
                    "\",\"arg0\":" + std::to_string(arg0) +
                    ",\"arg1\":" + std::to_string(arg1) + ",\"detail\":\"" +
                    JsonEscape(detail) + "\"}";
  return out;
}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = [] {
    size_t capacity = 4096;
    if (const char* v = std::getenv("TEMPSPEC_FLIGHT_CAPACITY")) {
      if (*v != '\0') {
        char* end = nullptr;
        unsigned long long parsed = std::strtoull(v, &end, 10);
        if (end != v && parsed > 0) {
          capacity = static_cast<size_t>(parsed);
          if (capacity < 64) capacity = 64;
          if (capacity > (1u << 20)) capacity = 1u << 20;
        }
      }
    }
    return new FlightRecorder(capacity);  // leaked: process lifetime
  }();
  return *recorder;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(RoundUpPow2(capacity < 2 ? 2 : capacity)) {
  mask_ = slots_.size() - 1;
}

void FlightRecorder::Record(FlightCategory category, FlightCode code,
                            int64_t arg0, int64_t arg1,
                            std::string_view detail) {
  const uint64_t nanos = SteadyNanos();
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];

  // Wait for the slot's previous generation to commit. Writers reach the
  // same slot `capacity` claims apart, so this only ever spins when a
  // writer lapped the whole ring while an earlier writer sat suspended
  // mid-record — without the wait, that interleaving could commit a slot
  // whose payload mixes two events.
  const uint64_t expected =
      seq >= slots_.size() ? 2 * (seq - slots_.size()) + 2 : 0;
  int spins = 0;
  while (slot.state.load(std::memory_order_acquire) != expected) {
    if (++spins > 64) std::this_thread::yield();
  }

  slot.state.store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.word[0].store(nanos, std::memory_order_relaxed);
  slot.word[1].store((static_cast<uint64_t>(ThisThreadFlightId()) << 32) |
                         (static_cast<uint64_t>(category) << 8) |
                         static_cast<uint64_t>(code),
                     std::memory_order_relaxed);
  slot.word[2].store(static_cast<uint64_t>(arg0), std::memory_order_relaxed);
  slot.word[3].store(static_cast<uint64_t>(arg1), std::memory_order_relaxed);
  for (size_t w = 0; w < 3; ++w) {
    uint64_t packed = 0;
    for (size_t b = 0; b < 8; ++b) {
      const size_t i = w * 8 + b;
      if (i < detail.size() && i < kFlightDetailBytes) {
        packed |= static_cast<uint64_t>(static_cast<unsigned char>(detail[i]))
                  << (8 * b);
      }
    }
    slot.word[4 + w].store(packed, std::memory_order_relaxed);
  }
  slot.state.store(2 * seq + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlotWords(uint64_t seq, uint64_t words[7]) const {
  const Slot& slot = slots_[seq & mask_];
  const uint64_t committed = 2 * seq + 2;
  if (slot.state.load(std::memory_order_acquire) != committed) return false;
  for (size_t i = 0; i < 7; ++i) {
    words[i] = slot.word[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.state.load(std::memory_order_relaxed) == committed;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t head = next_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  const uint64_t lo = head > cap ? head - cap : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<size_t>(head - lo));
  uint64_t words[7];
  for (uint64_t seq = lo; seq < head; ++seq) {
    if (!ReadSlotWords(seq, words)) continue;  // overwritten or in flight
    FlightEvent e;
    e.seq = seq;
    e.nanos = words[0];
    e.thread_id = static_cast<uint32_t>(words[1] >> 32);
    e.category = static_cast<FlightCategory>((words[1] >> 8) & 0xff);
    e.code = static_cast<FlightCode>(words[1] & 0xff);
    e.arg0 = static_cast<int64_t>(words[2]);
    e.arg1 = static_cast<int64_t>(words[3]);
    char detail[kFlightDetailBytes];
    for (size_t i = 0; i < kFlightDetailBytes; ++i) {
      detail[i] = static_cast<char>((words[4 + i / 8] >> (8 * (i % 8))) & 0xff);
    }
    size_t len = 0;
    while (len < kFlightDetailBytes && detail[len] != '\0') ++len;
    e.detail.assign(detail, len);
    events.push_back(std::move(e));
  }
  return events;
}

std::string FlightRecorder::ToJsonl() const {
  std::string out;
  for (const FlightEvent& e : Snapshot()) {
    out += e.ToJson();
    out += "\n";
  }
  return out;
}

void FlightRecorder::DumpToFd(int fd) const {
  const uint64_t head = next_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  const uint64_t lo = head > cap ? head - cap : 0;
  uint64_t words[7];
  char line[320];
  for (uint64_t seq = lo; seq < head; ++seq) {
    if (!ReadSlotWords(seq, words)) continue;
    size_t pos = 0;
    const size_t max = sizeof(line) - 1;
    pos = AppendLiteral(line, pos, max, "{\"seq\":");
    pos = AppendU64(line, pos, max, seq);
    pos = AppendLiteral(line, pos, max, ",\"nanos\":");
    pos = AppendU64(line, pos, max, words[0]);
    pos = AppendLiteral(line, pos, max, ",\"tid\":");
    pos = AppendU64(line, pos, max, words[1] >> 32);
    pos = AppendLiteral(line, pos, max, ",\"category\":\"");
    pos = AppendLiteral(
        line, pos, max,
        FlightCategoryToString(
            static_cast<FlightCategory>((words[1] >> 8) & 0xff)));
    pos = AppendLiteral(line, pos, max, "\",\"code\":\"");
    pos = AppendLiteral(line, pos, max,
                        FlightCodeToString(static_cast<FlightCode>(words[1] &
                                                                   0xff)));
    pos = AppendLiteral(line, pos, max, "\",\"arg0\":");
    pos = AppendI64(line, pos, max, static_cast<int64_t>(words[2]));
    pos = AppendLiteral(line, pos, max, ",\"arg1\":");
    pos = AppendI64(line, pos, max, static_cast<int64_t>(words[3]));
    pos = AppendLiteral(line, pos, max, ",\"detail\":\"");
    for (size_t i = 0; i < kFlightDetailBytes && pos < max; ++i) {
      const char c =
          static_cast<char>((words[4 + i / 8] >> (8 * (i % 8))) & 0xff);
      if (c == '\0') break;
      // Keep the signal path trivial: anything that would need JSON
      // escaping is replaced, not escaped.
      line[pos++] =
          (c < 0x20 || c == '"' || c == '\\' || c == 0x7f) ? '_' : c;
    }
    pos = AppendLiteral(line, pos, max, "\"}");
    line[pos++] = '\n';
    size_t off = 0;
    while (off < pos) {
      const ssize_t n = ::write(fd, line + off, pos - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      off += static_cast<size_t>(n);
    }
  }
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot write flight dump '", path, "': ",
                           std::strerror(errno));
  }
  DumpToFd(fd);
  ::close(fd);
  return Status::OK();
}

namespace {

char g_flight_dump_path[512] = {0};

void FlightFatalHandler(int signo) {
  const int saved_errno = errno;
  const int fd = ::open(g_flight_dump_path,
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    FlightRecorder::Instance().DumpToFd(fd);
    ::close(fd);
  }
  errno = saved_errno;
  // SA_RESETHAND restored the default disposition; re-raise so the process
  // still dies (and dumps core) the way it would have without the recorder.
  ::raise(signo);
}

}  // namespace

void FlightRecorder::InstallCrashHandler(const char* path) {
  if (path == nullptr || *path == '\0') return;
  std::strncpy(g_flight_dump_path, path, sizeof(g_flight_dump_path) - 1);
  g_flight_dump_path[sizeof(g_flight_dump_path) - 1] = '\0';
  // Touch the instance now: the first Instance() call allocates, which the
  // signal handler must never do.
  Instance();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = FlightFatalHandler;
  action.sa_flags = SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  const int signals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGILL, SIGFPE};
  for (int signo : signals) {
    ::sigaction(signo, &action, nullptr);
  }
}

void FlightRecorder::MaybeInstallFromEnv() {
  if (const char* path = std::getenv("TEMPSPEC_FLIGHT_DUMP")) {
    InstallCrashHandler(path);
  }
}

}  // namespace tempspec
