// Model-based randomized testing: a TemporalRelation (with snapshots and
// durable storage) is driven with random insert/delete/modify/query
// sequences and compared, after every operation, against a trivially
// correct in-memory reference model.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>

#include "query/executor.h"
#include "relation/temporal_relation.h"
#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

// The reference: a flat list of (element, lifetime) facts with scan-based
// queries. Obviously correct, obviously slow.
class ReferenceModel {
 public:
  struct Fact {
    ElementSurrogate id;
    ObjectSurrogate object;
    int64_t tt_begin;
    int64_t tt_end;  // INT64_MAX = current
    int64_t vt;
  };

  void Insert(ElementSurrogate id, ObjectSurrogate object, int64_t tt, int64_t vt) {
    facts_.push_back(Fact{id, object, tt, INT64_MAX, vt});
  }
  void Delete(ElementSurrogate id, int64_t tt) {
    for (auto& f : facts_) {
      if (f.id == id) f.tt_end = tt;
    }
  }
  size_t StateSizeAt(int64_t tt) const {
    size_t n = 0;
    for (const auto& f : facts_) {
      if (f.tt_begin <= tt && tt < f.tt_end) ++n;
    }
    return n;
  }
  size_t CurrentSize() const {
    size_t n = 0;
    for (const auto& f : facts_) {
      if (f.tt_end == INT64_MAX) ++n;
    }
    return n;
  }
  size_t TimesliceSize(int64_t vt) const {
    size_t n = 0;
    for (const auto& f : facts_) {
      if (f.tt_end == INT64_MAX && f.vt == vt) ++n;
    }
    return n;
  }
  size_t RangeSize(int64_t lo, int64_t hi) const {
    size_t n = 0;
    for (const auto& f : facts_) {
      if (f.tt_end == INT64_MAX && lo <= f.vt && f.vt < hi) ++n;
    }
    return n;
  }
  std::vector<ElementSurrogate> CurrentIds() const {
    std::vector<ElementSurrogate> out;
    for (const auto& f : facts_) {
      if (f.tt_end == INT64_MAX) out.push_back(f.id);
    }
    return out;
  }

 private:
  std::vector<Fact> facts_;
};

class FuzzFixture {
 public:
  explicit FuzzFixture(uint64_t seed, bool durable) : rng_(seed) {
    if (durable) {
      dir_ = std::filesystem::temp_directory_path() /
             ("tempspec_fuzz_" + std::to_string(::getpid()) + "_" +
              std::to_string(seed));
      std::filesystem::create_directories(dir_);
    }
    Open();
  }
  ~FuzzFixture() {
    relation_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  void Open() {
    RelationOptions options;
    options.schema =
        Schema::Make("fuzz",
                     {AttributeDef{"k", ValueType::kInt64,
                                   AttributeRole::kTimeInvariantKey}},
                     ValidTimeKind::kEvent, Granularity::Second())
            .ValueOrDie();
    clock_ = std::make_shared<LogicalClock>(T(next_tt_), Duration::Seconds(1));
    options.clock = clock_;
    options.snapshot_interval = 32;
    if (!dir_.empty()) options.storage.directory = dir_.string();
    relation_ = TemporalRelation::Open(std::move(options)).ValueOrDie();
  }

  void Reopen() {
    relation_.reset();
    Open();
  }

  void Step() {
    const double dice = rng_.NextDouble();
    const auto current = reference_.CurrentIds();
    if (dice < 0.55 || current.empty()) {
      const int64_t tt = next_tt_++;
      const int64_t vt = rng_.Uniform(-100, 3000);
      clock_->SetTo(T(tt));
      const ObjectSurrogate object = rng_.Uniform(1, 8);
      auto id = relation_->InsertEvent(object, T(vt),
                                       Tuple{static_cast<int64_t>(object)});
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      reference_.Insert(*id, object, tt, vt);
    } else if (dice < 0.75) {
      const ElementSurrogate victim =
          current[rng_.Uniform(0, current.size() - 1)];
      const int64_t tt = next_tt_++;
      clock_->SetTo(T(tt));
      ASSERT_OK(relation_->LogicalDelete(victim));
      reference_.Delete(victim, tt);
    } else if (dice < 0.85) {
      const ElementSurrogate victim =
          current[rng_.Uniform(0, current.size() - 1)];
      const int64_t tt = next_tt_++;
      const int64_t vt = rng_.Uniform(-100, 3000);
      clock_->SetTo(T(tt));
      const ObjectSurrogate object =
          relation_->GetElement(victim).ValueOrDie().object_surrogate;
      auto id = relation_->Modify(victim, ValidTime::Event(T(vt)),
                                  Tuple{static_cast<int64_t>(object)});
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      reference_.Delete(victim, tt);
      reference_.Insert(*id, object, tt, vt);
    } else {
      CheckQueries();
    }
  }

  void CheckQueries() {
    QueryExecutor exec(*relation_);
    // Rollback at random past stamps.
    const int64_t tt = rng_.Uniform(0, next_tt_ + 10);
    EXPECT_EQ(exec.Rollback(T(tt)).size(), reference_.StateSizeAt(tt));
    EXPECT_EQ(exec.Current().size(), reference_.CurrentSize());
    // Timeslice and range queries (exercise the planner too).
    const int64_t vt = rng_.Uniform(-100, 3000);
    EXPECT_EQ(exec.Timeslice(T(vt)).size(), reference_.TimesliceSize(vt));
    const int64_t lo = rng_.Uniform(-100, 3000);
    const int64_t hi = lo + rng_.Uniform(1, 500);
    EXPECT_EQ(exec.ValidRange(T(lo), T(hi)).size(), reference_.RangeSize(lo, hi));
  }

  TemporalRelation* relation() { return relation_.get(); }
  ReferenceModel& reference() { return reference_; }
  Random& rng() { return rng_; }

 private:
  Random rng_;
  std::filesystem::path dir_;
  std::shared_ptr<LogicalClock> clock_;
  std::unique_ptr<TemporalRelation> relation_;
  ReferenceModel reference_;
  int64_t next_tt_ = 1000;
};

class RelationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationFuzzTest, InMemoryAgainstReference) {
  FuzzFixture fixture(GetParam(), /*durable=*/false);
  for (int i = 0; i < 600; ++i) {
    fixture.Step();
    if (::testing::Test::HasFatalFailure()) return;
  }
  fixture.CheckQueries();
}

TEST_P(RelationFuzzTest, DurableWithPeriodicReopen) {
  FuzzFixture fixture(GetParam() + 1000, /*durable=*/true);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 80; ++i) {
      fixture.Step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    if (round % 2 == 0) {
      ASSERT_OK(fixture.relation()->Checkpoint());
    }
    fixture.Reopen();  // crash-recover, then keep fuzzing
    fixture.CheckQueries();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tempspec
