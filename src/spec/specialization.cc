#include "spec/specialization.h"

namespace tempspec {

Status SpecializationSet::ValidateFor(const Schema& schema) const {
  if (schema.IsEventRelation()) {
    if (!anchored_specs_.empty() || !interval_orderings_.empty() ||
        !successive_.empty()) {
      return Status::InvalidArgument(
          "relation '", schema.relation_name(),
          "' is event-stamped; interval specializations do not apply");
    }
    for (const auto& r : interval_regularities_) {
      if (r.dimension() != IntervalRegularityDimension::kTransactionTime) {
        return Status::InvalidArgument(
            "relation '", schema.relation_name(),
            "' is event-stamped; valid-time interval regularity does not apply");
      }
    }
  } else {
    if (!event_specs_.empty()) {
      return Status::InvalidArgument(
          "relation '", schema.relation_name(),
          "' is interval-stamped; wrap isolated-event types in "
          "AnchoredEventSpec (vt_b / vt_e / both)");
    }
    if (!orderings_.empty() || !regularities_.empty()) {
      return Status::InvalidArgument(
          "relation '", schema.relation_name(),
          "' is interval-stamped; use interval orderings / interval "
          "regularity");
    }
  }

  // Contradiction check: the intersection of all insertion-anchored bands on
  // the same valid anchor must be non-empty, or no element can ever be
  // inserted.
  auto check_band_conjunction = [&](const std::vector<Band>& bands,
                                    const char* what) -> Status {
    Band acc = Band::All();
    for (const Band& b : bands) acc = acc.Intersect(b);
    auto empty = acc.IsEmpty();
    if (empty.has_value() && *empty) {
      return Status::InvalidArgument(
          "declared ", what, " specializations are contradictory: combined band ",
          acc.ToString(), " is empty — no element could ever be inserted");
    }
    return Status::OK();
  };

  std::vector<Band> insertion_bands;
  for (const auto& s : event_specs_) {
    if (s.anchor() == TransactionAnchor::kInsertion) {
      insertion_bands.push_back(s.band());
    }
  }
  TS_RETURN_NOT_OK(check_band_conjunction(insertion_bands, "event"));

  std::vector<Band> begin_bands, end_bands;
  for (const auto& a : anchored_specs_) {
    if (a.spec().anchor() != TransactionAnchor::kInsertion) continue;
    if (a.valid_anchor() != ValidAnchor::kEnd) begin_bands.push_back(a.spec().band());
    if (a.valid_anchor() != ValidAnchor::kBegin) end_bands.push_back(a.spec().band());
  }
  TS_RETURN_NOT_OK(check_band_conjunction(begin_bands, "vt_b"));
  TS_RETURN_NOT_OK(check_band_conjunction(end_bands, "vt_e"));
  return Status::OK();
}

std::string SpecializationSet::ToString() const {
  std::string out;
  auto line = [&](const std::string& s) { out += "  " + s + "\n"; };
  for (const auto& s : event_specs_) line(s.ToString());
  for (const auto& s : anchored_specs_) line(s.ToString());
  for (const auto& s : orderings_) line(s.ToString());
  for (const auto& s : regularities_) line(s.ToString());
  for (const auto& s : interval_orderings_) line(s.ToString());
  for (const auto& s : successive_) line(s.ToString());
  for (const auto& s : interval_regularities_) line(s.ToString());
  if (out.empty()) out = "  (general — no specializations)\n";
  return out;
}

ConstraintChecker::ConstraintChecker(const SpecializationSet& specs,
                                     Granularity granularity)
    : specs_(specs), granularity_(granularity) {
  for (const auto& o : specs_.orderings()) {
    ordering_checkers_.emplace_back(o);
  }
  for (const auto& r : specs_.regularities()) {
    regularity_checkers_.emplace_back(r);
  }
  for (const auto& o : specs_.interval_orderings()) {
    interval_checkers_.emplace_back(o);
  }
  for (const auto& s : specs_.successive()) {
    interval_checkers_.emplace_back(s);
  }
}

Status ConstraintChecker::OnInsert(const Element& e) {
  // Isolated (stateless) checks first.
  for (const auto& s : specs_.event_specs()) {
    if (s.anchor() == TransactionAnchor::kInsertion) {
      TS_RETURN_NOT_OK(s.CheckElement(e, granularity_));
    }
  }
  for (const auto& a : specs_.anchored_specs()) {
    if (a.spec().anchor() == TransactionAnchor::kInsertion) {
      TS_RETURN_NOT_OK(a.CheckElement(e, granularity_));
    }
  }
  for (const auto& r : specs_.interval_regularities()) {
    // Valid-time regularity is known at insert; transaction-time regularity
    // only once the existence interval closes (checked on delete).
    if (r.dimension() != IntervalRegularityDimension::kTransactionTime) {
      Element probe = e;
      // Avoid tripping the (vacuous) existence check before deletion.
      probe.tt_end = TimePoint::Max();
      TS_RETURN_NOT_OK(r.CheckElement(probe));
    }
  }

  // Inter-element checks: probe everything, then commit everything, so a
  // rejection leaves no partial state.
  const EventStamp estamp{e.tt_begin, e.valid.at(), e.object_surrogate};
  const IntervalStamp istamp{e.tt_begin, e.valid.AsInterval(), e.object_surrogate};
  for (const auto& c : ordering_checkers_) TS_RETURN_NOT_OK(c.Check(estamp));
  for (const auto& c : regularity_checkers_) TS_RETURN_NOT_OK(c.Check(estamp));
  for (const auto& c : interval_checkers_) TS_RETURN_NOT_OK(c.Check(istamp));
  for (auto& c : ordering_checkers_) c.Commit(estamp);
  for (auto& c : regularity_checkers_) c.Commit(estamp);
  for (auto& c : interval_checkers_) c.Commit(istamp);
  return Status::OK();
}

Status ConstraintChecker::OnLogicalDelete(const Element& e) const {
  for (const auto& s : specs_.event_specs()) {
    if (s.anchor() == TransactionAnchor::kDeletion) {
      TS_RETURN_NOT_OK(s.CheckElement(e, granularity_));
    }
  }
  for (const auto& a : specs_.anchored_specs()) {
    if (a.spec().anchor() == TransactionAnchor::kDeletion) {
      TS_RETURN_NOT_OK(a.CheckElement(e, granularity_));
    }
  }
  for (const auto& r : specs_.interval_regularities()) {
    if (r.dimension() != IntervalRegularityDimension::kValidTime) {
      TS_RETURN_NOT_OK(r.CheckElement(e));
    }
  }
  return Status::OK();
}

Status ConstraintChecker::CheckExtension(std::span<const Element> elements) const {
  for (const Element& e : elements) {
    for (const auto& s : specs_.event_specs()) {
      TS_RETURN_NOT_OK(s.CheckElement(e, granularity_));
    }
    for (const auto& a : specs_.anchored_specs()) {
      TS_RETURN_NOT_OK(a.CheckElement(e, granularity_));
    }
    for (const auto& r : specs_.interval_regularities()) {
      TS_RETURN_NOT_OK(r.CheckElement(e));
    }
  }
  for (const auto& o : specs_.orderings()) {
    for (TransactionAnchor anchor :
         {TransactionAnchor::kInsertion, TransactionAnchor::kDeletion}) {
      // Inter-element properties are declared for the insertion anchor by
      // the engine; re-checking under deletion anchors is harmless for
      // extensions (skipped stamps) but we only verify insertion to match
      // the online semantics.
      if (anchor == TransactionAnchor::kDeletion) continue;
      TS_RETURN_NOT_OK(o.CheckStamps(ExtractEventStamps(elements, anchor)));
    }
  }
  for (const auto& r : specs_.regularities()) {
    TS_RETURN_NOT_OK(
        r.CheckStamps(ExtractEventStamps(elements, TransactionAnchor::kInsertion)));
  }
  const auto istamps =
      ExtractIntervalStamps(elements, TransactionAnchor::kInsertion);
  for (const auto& o : specs_.interval_orderings()) {
    TS_RETURN_NOT_OK(o.CheckStamps(istamps));
  }
  for (const auto& s : specs_.successive()) {
    TS_RETURN_NOT_OK(s.CheckStamps(istamps));
  }
  return Status::OK();
}

void ConstraintChecker::Reset() {
  for (auto& c : ordering_checkers_) c.Reset();
  for (auto& c : regularity_checkers_) c.Reset();
  for (auto& c : interval_checkers_) c.Reset();
}

}  // namespace tempspec
