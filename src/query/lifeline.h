// Lifeline analysis: the evolution of one object's time-varying attributes.
//
// Section 2: "At any point in time, each real-world object may have, in a
// single relation, a set of associated elements, all with the same object
// surrogate (c.f., a 'life-line' or a 'time sequence')." These helpers turn
// a per-surrogate partition into the value history of one attribute and
// answer "what was attribute A of object O at valid time vt, as currently
// believed?".
#ifndef TEMPSPEC_QUERY_LIFELINE_H_
#define TEMPSPEC_QUERY_LIFELINE_H_

#include <string>
#include <vector>

#include "relation/temporal_relation.h"

namespace tempspec {

/// \brief One step of an attribute's history.
struct LifelineEntry {
  ValidTime valid;  // when the value held (event or interval)
  Value value;
};

/// \brief The currently-believed history of `attribute` for `object`, in
/// valid-time order. Interval relations: one entry per current element
/// (adjacent equal values are merged); event relations: one entry per event.
Result<std::vector<LifelineEntry>> AttributeHistory(
    const TemporalRelation& relation, ObjectSurrogate object,
    const std::string& attribute);

/// \brief The currently-believed value of `attribute` for `object` at valid
/// time `vt`; NotFound when no current element covers vt.
Result<Value> AttributeAt(const TemporalRelation& relation,
                          ObjectSurrogate object, const std::string& attribute,
                          TimePoint vt);

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_LIFELINE_H_
