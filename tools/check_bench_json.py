#!/usr/bin/env python3
"""Schema validator for the BENCH_<id>.json files the bench binaries emit.

Usage:
    tools/check_bench_json.py BENCH_e1_enforcement.json [more.json ...]

Validates schema_version 2 (see bench/bench_json.h): required top-level keys
and types, the build-configuration params block (threads, metrics_enabled,
failpoints_enabled, flightrecorder_enabled, sanitizers, compiler),
per-benchmark entries with numeric
median/p99 and counters, and a metrics snapshot object with
counters/gauges/histograms maps. Exits nonzero with a per-file report on the
first structural violation so CI can gate on it. Stdlib only — no third-party
dependencies.
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    return False


def check_number(path, obj, key):
    if key not in obj or isinstance(obj[key], bool) or not isinstance(
            obj[key], (int, float)):
        return fail(path, f"missing or non-numeric '{key}' in {obj.keys()}")
    return True


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema_version") != 2:
        return fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                          "expected 2")
    if not isinstance(doc.get("bench_id"), str) or not doc["bench_id"]:
        return fail(path, "bench_id missing or empty")

    params = doc.get("params")
    if not isinstance(params, dict):
        return fail(path, "params missing or not an object")
    for key in ("threads", "metrics_enabled", "failpoints_enabled",
                "flightrecorder_enabled"):
        if not check_number(path, params, key):
            return False
    for key in ("metrics_enabled", "failpoints_enabled",
                "flightrecorder_enabled"):
        if params[key] not in (0, 1):
            return fail(path, f"{key} must be 0 or 1")
    # Build configuration: perf results are only comparable when these match.
    if params.get("sanitizers") not in ("", "thread", "address"):
        return fail(path, f"sanitizers is {params.get('sanitizers')!r}, "
                          "expected '', 'thread', or 'address'")
    if not isinstance(params.get("compiler"), str) or not params["compiler"]:
        return fail(path, "compiler missing or empty")

    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(path, "benchmarks missing or empty")
    for b in benchmarks:
        if not isinstance(b, dict):
            return fail(path, "benchmark entry is not an object")
        if not isinstance(b.get("name"), str) or not b["name"]:
            return fail(path, "benchmark name missing or empty")
        for key in ("runs", "iterations", "real_time_ns_median",
                    "real_time_ns_p99"):
            if not check_number(path, b, key):
                return False
        if b["real_time_ns_median"] < 0 or b["real_time_ns_p99"] < 0:
            return fail(path, f"negative timing in {b['name']}")
        if b["real_time_ns_p99"] < b["real_time_ns_median"]:
            return fail(path, f"p99 < median in {b['name']}")
        counters = b.get("counters")
        if not isinstance(counters, dict):
            return fail(path, f"counters missing in {b['name']}")
        for k, v in counters.items():
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return fail(path, f"non-numeric counter {k!r} in {b['name']}")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(path, "metrics snapshot missing or not an object")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            return fail(path, f"metrics.{section} missing or not an object")
    # A metrics-OFF tree legitimately scrapes empty maps; an ON tree must
    # have recorded *something* by the time a bench exits.
    if params["metrics_enabled"] == 1 and not metrics["counters"]:
        return fail(path, "metrics_enabled=1 but the counters map is empty")

    total = sum(len(metrics[s]) for s in ("counters", "gauges", "histograms"))
    print(f"{path}: OK ({doc['bench_id']}: {len(benchmarks)} benchmark(s), "
          f"{total} metric(s))")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = all([check_file(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
