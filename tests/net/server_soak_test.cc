// Multi-client concurrency soak for the full network stack: N client
// threads drive a real QueryService-backed NetServer with a mixed
// read/write/SHOW workload over both protocols (HTTP keep-alive and TSP1
// frames), with admission-control rejections retried like a production
// client would. Afterwards the relation's state must match a serial shadow
// run of the same logical workload — the single-writer contract and the
// per-connection serialization must hold under contention. Runs under TSan
// in CI (ctest -L server on the -DTEMPSPEC_SANITIZE=thread tree) to
// race-check the loop-thread/worker handoffs.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/query_service.h"
#include "net/net_test_client.h"
#include "net/server.h"
#include "testing.h"

namespace tempspec {
namespace {

using testing::TestClient;

constexpr int kClients = 4;
constexpr int kOpsPerClient = 30;

std::string InsertStatement(int client, int op) {
  // Distinct object per client; distinct value + second per op, so every
  // insert is identifiable and the final state is order-independent.
  return "INSERT INTO soak OBJECT " + std::to_string(client + 1) +
         " VALUES (" + std::to_string(client + 1) + ", " +
         std::to_string(client * 1000 + op) + ".0) VALID AT '1992-02-03 10:" +
         (op < 10 ? "0" : "") + std::to_string(op % 60) + ":00'";
}

/// The deterministic logical workload for one client: op i is a write when
/// i % 3 == 0, a SHOW when i % 7 == 0, otherwise a read.
enum class OpKind { kInsert, kShow, kRead };
OpKind KindOf(int op) {
  if (op % 3 == 0) return OpKind::kInsert;
  if (op % 7 == 0) return OpKind::kShow;
  return OpKind::kRead;
}

class ServerSoakTest : public ::testing::Test {
 protected:
  void StartServer() {
    service_ = std::make_unique<QueryService>(QueryServiceOptions{});
    ASSERT_OK(service_->Open());
    ASSERT_OK(service_
                  ->Execute(
                      "CREATE EVENT RELATION soak (sensor INT64 KEY, "
                      "v DOUBLE) GRANULARITY 1s",
                      nullptr)
                  .status());
    ServerOptions options;
    options.bind_address = "127.0.0.1";
    options.port = 0;
    options.max_inflight = 4;  // low enough that rejections actually happen
    options.worker_threads = 2;
    server_ = std::make_unique<NetServer>(std::move(options));
    server_->SetStatementHandler(
        [this](const std::string& statement, TraceContext* trace) {
          return service_->Execute(statement, trace);
        });
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(ServerSoakTest, ConcurrentMixedWorkloadMatchesSerialShadow) {
  StartServer();
  std::atomic<int> reads_served{0};
  std::atomic<int> shows_served{0};
  std::atomic<int> rejections_retried{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const bool frames = (c % 2 == 1);  // half HTTP, half binary protocol
      TestClient client(server_->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      for (int op = 0; op < kOpsPerClient; ++op) {
        std::string statement;
        switch (KindOf(op)) {
          case OpKind::kInsert:
            statement = InsertStatement(c, op);
            break;
          case OpKind::kShow:
            statement = "SHOW SPECIALIZATION soak";
            break;
          case OpKind::kRead:
            statement = "CURRENT soak";
            break;
        }
        // Retry admission rejections (503 / kRejected) with a short backoff;
        // anything else unexpected is a failure.
        const testing::ExecReply reply =
            testing::ExecuteStatement(client, statement, frames);
        rejections_retried.fetch_add(reply.rejections);
        if (!reply.transport_ok) {
          ADD_FAILURE() << "statement '" << statement
                        << "' got no definitive reply (rejected "
                        << reply.rejections << " time(s))";
          failures.fetch_add(1);
          return;
        }
        if (!reply.accepted) {
          ADD_FAILURE() << "statement '" << statement << "' answered "
                        << reply.code << ": " << reply.body;
          failures.fetch_add(1);
          return;
        }
        if (KindOf(op) == OpKind::kRead) reads_served.fetch_add(1);
        if (KindOf(op) == OpKind::kShow) shows_served.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Serial shadow: the same logical writes against a fresh service. The
  // interleaving differs, the final relation state must not.
  QueryService shadow{QueryServiceOptions{}};
  ASSERT_OK(shadow.Open());
  ASSERT_OK(shadow
                .Execute(
                    "CREATE EVENT RELATION soak (sensor INT64 KEY, "
                    "v DOUBLE) GRANULARITY 1s",
                    nullptr)
                .status());
  int shadow_inserts = 0;
  for (int c = 0; c < kClients; ++c) {
    for (int op = 0; op < kOpsPerClient; ++op) {
      if (KindOf(op) != OpKind::kInsert) continue;
      ASSERT_OK(shadow.Execute(InsertStatement(c, op), nullptr).status());
      ++shadow_inserts;
    }
  }

  ASSERT_OK_AND_ASSIGN(std::string concurrent_state,
                       service_->Execute("CURRENT soak", nullptr));
  ASSERT_OK_AND_ASSIGN(std::string shadow_state,
                       shadow.Execute("CURRENT soak", nullptr));
  const std::string want =
      std::to_string(shadow_inserts) + " element(s)";
  EXPECT_NE(concurrent_state.find(want), std::string::npos)
      << "concurrent run diverged from the serial shadow:\n"
      << concurrent_state;
  EXPECT_NE(shadow_state.find(want), std::string::npos) << shadow_state;

  // Every read and SHOW was actually served, and the counters reconcile:
  // admitted = one per completed statement (retries only ever follow a
  // rejection, which is counted separately, not admitted).
  EXPECT_EQ(reads_served.load() + shows_served.load(),
            kClients * kOpsPerClient - shadow_inserts);
  const ServerStats stats = server_->Stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients * kOpsPerClient));
  EXPECT_EQ(stats.requests_rejected,
            static_cast<uint64_t>(rejections_retried.load()));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(ServerSoakTest, ManyShortLivedConnections) {
  // Connection churn: every request on a fresh socket, exercising
  // accept/close paths concurrently with execution.
  StartServer();
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int op = 0; op < 10; ++op) {
        TestClient client(server_->port());
        const testing::ExecReply reply = testing::ExecuteStatement(
            client,
            op % 2 == 0 ? InsertStatement(c, op + 100) : "CURRENT soak",
            /*frames=*/false);
        if (!reply.accepted) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->Stats().connections_accepted,
            static_cast<uint64_t>(kClients * 10));
}

}  // namespace
}  // namespace tempspec
