// A minimal recursive-descent JSON parser for the test suite.
//
// The engine emits JSON in several places — MetricsSnapshot::ToJson,
// TraceContext::ToJson, the slowlog sink, the bench result files — and the
// tests must prove those lines are *valid JSON*, not merely
// string-compare them. Third-party JSON libraries are out of scope for this
// repo, so this header implements just enough of RFC 8259 to parse what the
// engine emits (objects, arrays, strings with escapes, integer/float
// numbers, booleans, null) and to read values back out. Strict on what it
// accepts: trailing garbage, unescaped control characters, and malformed
// escapes are errors — that strictness is the point.
#ifndef TEMPSPEC_TESTS_TESTING_JSON_H_
#define TEMPSPEC_TESTS_TESTING_JSON_H_

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace tempspec {
namespace testing {

/// \brief A parsed JSON value (numbers are kept as their source text to
/// sidestep double-rounding in comparisons).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string number;  // source text, e.g. "12" or "-3.5e2"
  std::string string;  // decoded (unescaped) contents
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  /// \brief Parses exactly one JSON document; trailing non-space is an error.
  static Result<JsonValue> Parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v;
    TS_RETURN_NOT_OK(p.ParseValue(&v));
    p.SkipSpace();
    if (p.pos_ != text.size()) {
      return Status::InvalidArgument("trailing characters at offset ", p.pos_);
    }
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::InvalidArgument("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out, c == 't');
    if (c == 'n') {
      out->type = JsonValue::Type::kNull;
      return Expect("null");
    }
    return ParseNumber(out);
  }

  Status Expect(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      return Status::InvalidArgument("expected '", word, "' at offset ", pos_);
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseLiteral(JsonValue* out, bool value) {
    out->type = JsonValue::Type::kBool;
    out->boolean = value;
    return Expect(value ? "true" : "false");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("malformed number at offset ", start);
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Status::InvalidArgument("malformed fraction at offset ", start);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Status::InvalidArgument("malformed exponent at offset ", start);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out->type = JsonValue::Type::kNumber;
    out->number = text_.substr(start, pos_ - start);
    return Status::OK();
  }

  static int HexDigit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  Status ParseString(std::string* out) {
    if (text_[pos_] != '"') return Status::InvalidArgument("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) {
        return Status::InvalidArgument("raw control character 0x",
                                       static_cast<int>(c), " in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::InvalidArgument("truncated \\u escape");
            }
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const int d = HexDigit(text_[pos_ + i]);
              if (d < 0) return Status::InvalidArgument("bad \\u escape digit");
              code = code * 16 + d;
            }
            pos_ += 4;
            // The engine only emits \u00XX (control characters); decode the
            // BMP range as UTF-8 so round-trip comparisons work.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::InvalidArgument("unknown escape \\", esc);
        }
        continue;
      }
      out->push_back(static_cast<char>(c));
      ++pos_;
    }
    return Status::InvalidArgument("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      std::string key;
      TS_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::InvalidArgument("expected ':' at offset ", pos_);
      }
      ++pos_;
      JsonValue value;
      TS_RETURN_NOT_OK(ParseValue(&value));
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::InvalidArgument("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or '}' at offset ", pos_);
    }
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      TS_RETURN_NOT_OK(ParseValue(&value));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::InvalidArgument("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Status::InvalidArgument("expected ',' or ']' at offset ", pos_);
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// \brief Convenience: parse-or-fail used as `ASSERT_OK(ValidJson(line))`.
inline Status ValidJson(const std::string& text) {
  return JsonParser::Parse(text).status();
}

}  // namespace testing
}  // namespace tempspec

#endif  // TEMPSPEC_TESTS_TESTING_JSON_H_
