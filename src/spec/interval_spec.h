// The isolated-interval taxonomy (Section 3.3).
//
// For interval relations the valid time-stamp is [vt_b, vt_e). Two families
// of restrictions apply to intervals in isolation:
//
// 1. Every isolated-event characterization (Section 3.1) may be applied to
//    either endpoint: a relation can be vt_b-retroactive, vt_e-degenerate,
//    and so on. If both endpoints satisfy a property it is simply named, e.g.
//    "retroactive". AnchoredEventSpec captures this.
//
// 2. Interval regularity: the *durations* of the transaction-time existence
//    interval [tt_b, tt_d), of the valid interval, or of both, are integral
//    multiples of a time unit; strict versions fix the multiple at one (all
//    intervals exactly one unit long).
#ifndef TEMPSPEC_SPEC_INTERVAL_SPEC_H_
#define TEMPSPEC_SPEC_INTERVAL_SPEC_H_

#include <span>
#include <string>

#include "model/element.h"
#include "spec/event_spec.h"
#include "spec/interevent_spec.h"
#include "util/result.h"

namespace tempspec {

/// \brief Which endpoint of the valid interval an event property applies to.
enum class ValidAnchor : uint8_t {
  kBegin,  // vt_b
  kEnd,    // vt_e
  kBoth,   // the plainly named property: both endpoints satisfy it
};

const char* ValidAnchorToString(ValidAnchor anchor);

/// \brief An isolated-event specialization applied to an endpoint of the
/// valid interval of every element, e.g. "vt_e-retroactive": every interval
/// is stored (at the anchored transaction time) only after it has ended.
class AnchoredEventSpec {
 public:
  AnchoredEventSpec(EventSpecialization spec, ValidAnchor anchor)
      : spec_(std::move(spec)), valid_anchor_(anchor) {}

  const EventSpecialization& spec() const { return spec_; }
  ValidAnchor valid_anchor() const { return valid_anchor_; }

  /// \brief Checks one interval-stamped element.
  Status CheckElement(const Element& e, Granularity granularity) const;

  std::string ToString() const;

 private:
  EventSpecialization spec_;
  ValidAnchor valid_anchor_;
};

/// \brief Dimension of interval regularity.
enum class IntervalRegularityDimension : uint8_t {
  kTransactionTime,  // tt_d = tt_b + kΔt
  kValidTime,        // vt_e = vt_b + kΔt
  kTemporal,         // both, same unit (independent multipliers)
};

const char* IntervalRegularityDimensionToString(IntervalRegularityDimension dim);

/// \brief Interval regularity: durations are multiples of `unit`; strict
/// versions require the multiple to be exactly one.
///
/// Transaction-time interval regularity constrains the existence interval,
/// which is only determined once the element is logically deleted; current
/// elements therefore pass vacuously.
class IntervalRegularitySpec {
 public:
  static Result<IntervalRegularitySpec> Make(
      IntervalRegularityDimension dim, Duration unit, bool strict = false,
      SpecScope scope = SpecScope::kPerRelation);

  IntervalRegularityDimension dimension() const { return dim_; }
  Duration unit() const { return unit_; }
  bool strict() const { return strict_; }
  SpecScope scope() const { return scope_; }

  /// \brief Checks one element (regularity of durations is a per-element
  /// property, so scope does not change the outcome; it is carried for
  /// catalog bookkeeping).
  Status CheckElement(const Element& e) const;

  /// \brief Batch check.
  Status CheckExtension(std::span<const Element> elements) const;

  std::string ToString() const;

 private:
  IntervalRegularitySpec(IntervalRegularityDimension dim, Duration unit,
                         bool strict, SpecScope scope)
      : dim_(dim), unit_(unit), strict_(strict), scope_(scope) {}

  IntervalRegularityDimension dim_;
  Duration unit_;
  bool strict_;
  SpecScope scope_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_INTERVAL_SPEC_H_
