#include "model/element.h"

namespace tempspec {

std::string Element::ToString() const {
  std::string out = "e#" + std::to_string(element_surrogate);
  out += " obj#" + std::to_string(object_surrogate);
  out += " tt=[" + tt_begin.ToString() + ", " + tt_end.ToString() + ")";
  out += " vt=" + valid.ToString();
  out += " " + attributes.ToString();
  return out;
}

}  // namespace tempspec
