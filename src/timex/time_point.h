// TimePoint: the chronon domain shared by valid and transaction time.
//
// The paper (Section 3) requires that valid and transaction time-stamps be
// drawn from the same totally ordered domain so they can be compared; we use
// a 64-bit count of microseconds since the Unix epoch (one chronon = 1 us).
// Granularities coarser than a chronon are modeled separately (granularity.h).
#ifndef TEMPSPEC_TIMEX_TIME_POINT_H_
#define TEMPSPEC_TIMEX_TIME_POINT_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace tempspec {

/// \brief An instant on the shared valid/transaction time line.
///
/// TimePoint is a strong typedef over int64 microseconds. Min() and Max() are
/// reserved sentinels: Max() denotes "until changed" / "forever" (used as the
/// open deletion time tt_d of elements still current), Min() denotes
/// "beginning of time".
class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}

  static constexpr TimePoint FromMicros(int64_t micros) { return TimePoint(micros); }
  static constexpr TimePoint FromSeconds(int64_t seconds) {
    return TimePoint(seconds * 1'000'000);
  }

  /// \brief Beginning of time.
  static constexpr TimePoint Min() {
    return TimePoint(std::numeric_limits<int64_t>::min());
  }
  /// \brief "Until changed" / end of time.
  static constexpr TimePoint Max() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return micros_; }
  constexpr int64_t seconds() const { return micros_ / 1'000'000; }

  constexpr bool IsMin() const { return *this == Min(); }
  constexpr bool IsMax() const { return *this == Max(); }

  friend constexpr auto operator<=>(TimePoint a, TimePoint b) = default;

  /// \brief Difference in whole microseconds. Only meaningful for
  /// non-sentinel operands.
  constexpr int64_t MicrosSince(TimePoint other) const {
    return micros_ - other.micros_;
  }

  /// \brief ISO-8601-like rendering in UTC, e.g. "1992-02-03 10:30:00.000000";
  /// sentinels render as "-inf" / "+inf".
  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t micros) : micros_(micros) {}

  int64_t micros_;
};

std::ostream& operator<<(std::ostream& os, TimePoint tp);

constexpr int64_t kMicrosPerSecond = 1'000'000;
constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr int64_t kMicrosPerDay = 24 * kMicrosPerHour;
constexpr int64_t kMicrosPerWeek = 7 * kMicrosPerDay;

}  // namespace tempspec

#endif  // TEMPSPEC_TIMEX_TIME_POINT_H_
