// Crash-recovery exploration of the durable backlog (tests/testing_crash.h).
//
// Every strategy sweeps a fault across kTriggers distinct IO-operation
// counts, with a different seeded workload per trigger, and checks the
// recovery contract at each crash point: recovery succeeds, the recovered
// history is a byte-identical prefix of the acknowledged one, nothing below
// the last completed checkpoint is lost, and the materialized state matches
// an in-memory shadow model. Each sweep also asserts that faults actually
// fired, so a build with failpoints compiled out fails loudly instead of
// passing vacuously.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "relation/temporal_relation.h"
#include "testing_crash.h"
#include "util/failpoint.h"

namespace tempspec {
namespace testing {
namespace {

constexpr uint64_t kTriggers = 200;       // crash points per strategy
constexpr size_t kNumOps = 160;           // workload length per trial
constexpr size_t kCheckpointEvery = 37;   // co-prime with WAL sync_every
constexpr uint64_t kSeedBase = 0xC0FFEE;

uint64_t TrialSeed(uint64_t trigger) { return kSeedBase ^ (trigger * 1000003ull); }

/// Runs a 200-point crash sweep and returns how many trials actually
/// crashed. Fault counters are reset first and asserted >0 afterwards.
size_t Sweep(const CrashStrategy& strategy) {
  FailpointRegistry::Instance().ResetCounters();
  size_t crashed_trials = 0;
  for (uint64_t trigger = 0; trigger < kTriggers; ++trigger) {
    SCOPED_TRACE(std::string(strategy.name) + " trigger=" +
                 std::to_string(trigger));
    TrialOutcome out;
    RunBacklogCrashTrial(strategy, trigger, TrialSeed(trigger), kNumOps,
                         kCheckpointEvery, &out);
    if (::testing::Test::HasFatalFailure()) return crashed_trials;
    if (out.crashed) ++crashed_trials;
  }
  const FaultCounters c = PrintFaultSummary(strategy.name);
  EXPECT_GT(c.injected, 0u)
      << strategy.name << ": no fault was ever injected — the sweep was "
      << "vacuous (failpoints disabled or site name wrong?)";
  return crashed_trials;
}

TEST(CrashRecoveryTest, FailpointsAreCompiledIn) {
  ASSERT_TRUE(FailpointsCompiledIn())
      << "This binary was built with -DTEMPSPEC_FAILPOINTS=OFF: the entire "
         "crash-recovery suite would be vacuous. Build the test tree with "
         "failpoints ON (the default).";
}

// A short write tears the WAL tail mid-record; replay must stop at the tear
// and recovery keeps the acknowledged prefix up to it.
TEST(CrashRecoveryTest, TornWalAppend) {
  CrashStrategy s;
  s.name = "torn-wal-append";
  s.site = "wal.append";
  s.kind = FaultKind::kShortWrite;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.short_writes, 0u);
}

// A flipped bit lands anywhere in the record — length, CRC, LSN, or payload.
// The record CRC covers the LSN and payload, so every flip is detected and
// treated as end-of-log, never replayed or misrouted.
TEST(CrashRecoveryTest, CorruptWalAppend) {
  CrashStrategy s;
  s.name = "corrupt-wal-append";
  s.site = "wal.append";
  s.kind = FaultKind::kCorruptBit;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.corrupt_writes, 0u);
}

// With fsync-per-append, a clean crash loses nothing: recovery must return
// exactly the acknowledged operations, not merely a prefix.
TEST(CrashRecoveryTest, CleanCrashFsyncAlways) {
  CrashStrategy s;
  s.name = "clean-crash-fsync-always";
  s.site = "wal.append";
  s.kind = FaultKind::kCrash;
  s.sync_mode = SyncMode::kAlways;
  s.lossless = true;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
}

// With no syncing at all, the simulated machine crash may discard the whole
// unsynced WAL; only the checkpoint floor is guaranteed.
TEST(CrashRecoveryTest, LostPageCacheNoSync) {
  CrashStrategy s;
  s.name = "lost-page-cache-no-sync";
  s.site = "wal.append";
  s.kind = FaultKind::kCrash;
  s.sync_mode = SyncMode::kNone;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
}

// A torn page write during checkpoint (or during store creation, for small
// triggers) leaves a partial page; the scan-based page recovery must stop at
// the tear while the WAL still covers everything past the last checkpoint.
TEST(CrashRecoveryTest, TornCheckpointPageWrite) {
  CrashStrategy s;
  s.name = "torn-checkpoint-page-write";
  s.site = "disk.write_page";
  s.kind = FaultKind::kShortWrite;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
}

// A clean crash on a page write aborts the checkpoint between PersistRange
// and the WAL reset; recovery must reconcile overlapping page/WAL copies by
// LSN without duplicating or dropping operations.
TEST(CrashRecoveryTest, CheckpointPageCrash) {
  CrashStrategy s;
  s.name = "checkpoint-page-crash";
  s.site = "disk.write_page";
  s.kind = FaultKind::kCrash;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
}

// Every WAL fsync silently does nothing (lying disk), then a crash: the
// durable watermark never advances, so the machine-crash cut may reach all
// the way back to the last checkpoint. The floor must still hold, because
// checkpoint durability goes through the data-page fsync path.
TEST(CrashRecoveryTest, DroppedSyncThenCrash) {
  CrashStrategy s;
  s.name = "dropped-sync-then-crash";
  s.site = "wal.append";
  s.kind = FaultKind::kCrash;
  s.drop_wal_sync = true;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.dropped_syncs, 0u);
}

// Regression for WriteAheadLog::Reset durability: the checkpoint's WAL
// truncation never reaches the disk, so stale pre-checkpoint records stay in
// the file alongside post-checkpoint ones. Recovery must skip them by LSN —
// byte-identical-prefix would fail on any resurrected or duplicated record.
TEST(CrashRecoveryTest, WalResetDropRegression) {
  CrashStrategy s;
  s.name = "wal-reset-drop";
  s.site = "wal.append";
  s.kind = FaultKind::kCrash;
  s.drop_wal_reset = true;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.dropped_syncs, 0u)
      << "no WAL reset was ever dropped; the regression was not exercised";
}

// Backlog compaction (ReplaceAll) rewrites the page file through a side
// file adopted by atomic rename, renumbering LSNs from zero under a bumped
// epoch. A crash anywhere in the rewrite must resolve to exactly the old or
// exactly the new generation — never a hybrid, a WAL-gap error, or a stale
// record replayed under the new numbering.
TEST(CrashRecoveryTest, CompactionCrash) {
  CrashStrategy s;
  s.name = "compaction-crash";
  s.site = "disk.write_page";
  s.kind = FaultKind::kShortWrite;
  s.compact_every = 41;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
}

// Regression for stale WAL records surviving a compaction whose WAL reset
// never becomes durable: every reset is dropped, so old-generation records
// (higher LSNs, old epoch) sit in the file alongside new-generation
// appends. Replay must discard them by epoch — routed by LSN alone, a stale
// record could alias the compacted count and replay as a bogus fresh
// operation, and any other stale LSN would trip the gap check and make Open
// fail permanently.
TEST(CrashRecoveryTest, CompactionStaleWalRegression) {
  CrashStrategy s;
  s.name = "compaction-stale-wal";
  s.site = "wal.append";
  s.kind = FaultKind::kCrash;
  s.compact_every = 29;
  s.drop_wal_reset = true;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.dropped_syncs, 0u)
      << "no WAL reset was ever dropped; the regression was not exercised";
}

// A flipped bit in a checkpoint page write: the record CRC detects it and
// recovery quarantines the page, restoring its operations from the WAL.
TEST(CrashRecoveryTest, CorruptCheckpointPageWrite) {
  CrashStrategy s;
  s.name = "corrupt-checkpoint-page-write";
  s.site = "disk.write_page";
  s.kind = FaultKind::kCorruptBit;
  const size_t crashed = Sweep(s);
  EXPECT_GT(crashed, 0u);
  const FaultCounters c = FailpointRegistry::Instance().counters();
  EXPECT_GT(c.corrupt_writes, 0u);
}

// Transient EIO (a few consecutive failures, then the device recovers) must
// be absorbed by the retry/backoff layer: no operation fails, nothing is
// lost, and the store never turns read-only.
TEST(CrashRecoveryTest, TransientErrorsAreSurvived) {
  constexpr uint64_t kTransientTriggers = 64;
  for (const char* site : {"wal.append", "wal.sync", "disk.write_page"}) {
    CrashStrategy s;
    s.name = "transient-eio";
    s.site = site;
    s.kind = FaultKind::kTransientError;
    s.transient_ops = 2;  // fewer than kMaxIoAttempts: retries must absorb it
    FailpointRegistry::Instance().ResetCounters();
    for (uint64_t trigger = 0; trigger < kTransientTriggers; ++trigger) {
      SCOPED_TRACE(std::string(site) + " trigger=" + std::to_string(trigger));
      TrialOutcome out;
      RunBacklogCrashTrial(s, trigger, TrialSeed(trigger), kNumOps,
                           kCheckpointEvery, &out);
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_FALSE(out.crashed) << "a transient error became fatal";
      EXPECT_EQ(out.acked, kNumOps);
      EXPECT_EQ(out.recovered, kNumOps)
          << "a fully-acknowledged, cleanly-closed store lost operations";
    }
    const FaultCounters c = PrintFaultSummary(site);
    EXPECT_GT(c.transient_errors, 0u) << site;
    EXPECT_EQ(c.crashes, 0u) << site;
  }
}

// End-to-end: the relation layer (inserts, logical deletes, modifications —
// the paper's three backlog operations) over a durable store, crashed at 200
// points and reopened through TemporalRelation::Open. Beyond backlog prefix
// identity, the rebuilt in-memory structures (elements, per-object
// partitions, current state) must be consistent with the recovered history.
TEST(CrashRecoveryTest, RelationLevelRecovery) {
  ASSERT_TRUE(FailpointsCompiledIn());
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.ResetCounters();

  SchemaPtr schema =
      Schema::Make("crash_rel",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"note", ValueType::kString}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();

  constexpr size_t kRelationOps = 120;
  size_t crashed_trials = 0;
  for (uint64_t trigger = 0; trigger < kTriggers; ++trigger) {
    SCOPED_TRACE("relation trigger=" + std::to_string(trigger));
    registry.DisarmAll();
    CrashTempDir dir;
    Random rng(TrialSeed(trigger));

    RelationOptions options;
    options.schema = schema;
    options.storage.directory = dir.path();
    options.storage.sync_mode = SyncMode::kEveryN;
    options.storage.sync_every = 8;

    FaultSpec spec;
    spec.kind = FaultKind::kShortWrite;
    spec.trigger_at = trigger;
    spec.seed = TrialSeed(trigger);
    registry.Arm("wal.append", spec);

    bool crashed = false;
    std::vector<std::string> shadow;  // encoded acked backlog entries
    size_t floor = 0;
    {
      auto opened = TemporalRelation::Open(options);
      if (!opened.ok()) {
        crashed = true;
      } else {
        std::unique_ptr<TemporalRelation> rel = std::move(opened).ValueOrDie();
        std::vector<ElementSurrogate> live;
        for (size_t i = 0; i < kRelationOps; ++i) {
          const double dice = rng.NextDouble();
          Status st = Status::OK();
          if (!live.empty() && dice < 0.2) {
            const size_t v = static_cast<size_t>(
                rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
            st = rel->LogicalDelete(live[v]);
            if (st.ok()) live.erase(live.begin() + static_cast<ptrdiff_t>(v));
          } else if (!live.empty() && dice < 0.35) {
            // Modify = delete + insert under one transaction time: a crash
            // between its two WAL records is a legal entry-level prefix.
            const size_t v = static_cast<size_t>(
                rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
            auto modified = rel->Modify(
                live[v], ValidTime::Event(T(static_cast<int64_t>(5 * i + 2))),
                Tuple{static_cast<int64_t>(i), rng.NextString(12)});
            st = modified.status();
            if (st.ok()) live[v] = modified.ValueOrDie();
          } else {
            auto inserted = rel->InsertEvent(
                static_cast<ObjectSurrogate>(i % 7 + 1),
                T(static_cast<int64_t>(5 * i + 1)),
                Tuple{static_cast<int64_t>(i), rng.NextString(12)});
            st = inserted.status();
            if (st.ok()) live.push_back(inserted.ValueOrDie());
          }
          if (!st.ok()) {
            crashed = true;
            break;
          }
          if ((i + 1) % kCheckpointEvery == 0) {
            const Status cp = rel->Checkpoint();
            if (!cp.ok()) {
              crashed = true;
              break;
            }
            floor = rel->backlog().size();
          }
        }
        // The in-memory backlog holds exactly the WAL-acknowledged entries —
        // including, say, the delete half of a Modify whose insert half
        // crashed. That entry-level history is the shadow recovery must
        // reproduce a prefix of.
        for (const BacklogEntry& e : rel->backlog().entries()) {
          shadow.push_back(e.Encode());
        }
        // Tear down while crashed so the WAL applies its tail cut.
      }
    }
    registry.DisarmAll();
    if (crashed) ++crashed_trials;

    RelationOptions reopen;
    reopen.schema = schema;
    reopen.storage = options.storage;
    auto recovered = TemporalRelation::Open(reopen);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    std::unique_ptr<TemporalRelation> rel = std::move(recovered).ValueOrDie();

    const std::vector<BacklogEntry>& entries = rel->backlog().entries();
    ASSERT_LE(entries.size(), shadow.size());
    ASSERT_GE(entries.size(), floor);
    size_t inserts = 0;
    std::unordered_map<ElementSurrogate, bool> alive;
    for (size_t i = 0; i < entries.size(); ++i) {
      ASSERT_EQ(entries[i].Encode(), shadow[i]) << "backlog op " << i;
      if (entries[i].op == BacklogOpType::kInsert) {
        ++inserts;
        alive[entries[i].element.element_surrogate] = true;
      } else {
        alive[entries[i].target] = false;
      }
    }

    // The rebuilt relation structures must agree with the recovered history.
    ASSERT_EQ(rel->size(), inserts);
    size_t alive_count = 0;
    for (const auto& [id, is_alive] : alive) alive_count += is_alive ? 1 : 0;
    ASSERT_EQ(rel->CurrentState().size(), alive_count);

    // Partitions and object order are rebuilt on recovery (regression: they
    // used to come back empty, breaking PartitionOf()/Objects()).
    size_t partitioned = 0;
    for (ObjectSurrogate object : rel->Objects()) {
      partitioned += rel->PartitionOf(object).size();
    }
    ASSERT_EQ(partitioned, rel->size());
    if (rel->size() > 0) {
      ASSERT_FALSE(rel->Objects().empty());
    }
  }
  EXPECT_GT(crashed_trials, 0u);
  const FaultCounters c = PrintFaultSummary("relation-level");
  EXPECT_GT(c.injected, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace tempspec
