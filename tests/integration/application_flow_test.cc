// End-to-end "application system context" (the paper's Section 1 third
// shortcoming): facts flow through multiple interconnected temporal
// relations — a degenerate sensor feed, a replicated warehouse copy with a
// propagated specialization, and temporal-algebra reporting on top.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "flow/replicator.h"
#include "query/algebra.h"
#include "query/executor.h"
#include "spec/inference.h"
#include "testing.h"
#include "timex/calendar.h"

namespace tempspec {
namespace {

using testing::Civil;

TEST(ApplicationFlowTest, FeedToWarehouseToReport) {
  Catalog catalog;
  auto feed_clock =
      std::make_shared<LogicalClock>(Civil(1992, 2, 3, 8, 0), Duration::Seconds(10));
  auto house_clock =
      std::make_shared<LogicalClock>(Civil(1992, 2, 3, 8, 0), Duration::Seconds(10));

  // 1. The plant feed, declared in DDL: degenerate + strictly regular.
  RelationOptions feed_base;
  feed_base.clock = feed_clock;
  ASSERT_OK_AND_ASSIGN(
      TemporalRelation * feed,
      catalog.CreateRelationFromDdl(
          "CREATE EVENT RELATION feed (sensor INT64 KEY, kelvin DOUBLE) "
          "GRANULARITY 1s WITH DEGENERATE, STRICT TEMPORAL REGULAR 10s",
          feed_base));

  // 2. The warehouse replica: its specialization is *derived* from the
  // feed's via the propagation rule, then declared and enforced.
  ASSERT_OK_AND_ASSIGN(
      EventSpecialization derived,
      PropagatedSpec(EventSpecialization::Degenerate(), Duration::Seconds(60),
                     Duration::Seconds(300)));
  EXPECT_EQ(derived.kind(), EventSpecKind::kDelayedStronglyRetroactivelyBounded);
  RelationOptions house_options;
  house_options.schema =
      Schema::Make("warehouse",
                   {AttributeDef{"sensor", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"kelvin", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  house_options.specializations.AddEvent(derived);
  house_options.clock = house_clock;
  ASSERT_OK_AND_ASSIGN(TemporalRelation * warehouse,
                       catalog.CreateRelation(std::move(house_options)));

  // 3. Ingest a shift of samples and replicate.
  for (int i = 0; i < 120; ++i) {
    const TimePoint now = feed_clock->Peek();
    ASSERT_OK(feed->InsertEvent(i % 3 + 1, now,
                                Tuple{int64_t{i % 3 + 1}, 300.0 + i % 7})
                  .status());
  }
  Replicator replicator(feed, warehouse, house_clock.get(), Duration::Seconds(60),
                        Duration::Seconds(300));
  ASSERT_OK(replicator.Sync());
  EXPECT_EQ(warehouse->size(), 120u);
  EXPECT_OK(warehouse->CheckExtension());

  // 4. The warehouse's own inference confirms the derived declaration is
  // tight enough to be useful (offsets stay inside the propagated band).
  const RelationProfile profile =
      InferProfile(warehouse->elements(), ValidTimeKind::kEvent,
                   warehouse->schema().valid_granularity());
  EXPECT_GE(profile.event.min_offset_us, -300 * kMicrosPerSecond);
  EXPECT_LE(profile.event.max_offset_us, -60 * kMicrosPerSecond);

  // 5. Reporting: per-sensor timeslices use the warehouse's banded plan.
  QueryExecutor exec(*warehouse);
  const Element& probe = warehouse->elements()[60];
  QueryStats stats;
  auto slice = exec.Timeslice(probe.valid.at(), &stats);
  EXPECT_EQ(exec.optimizer().PlanTimeslice(probe.valid.at()).strategy,
            ExecutionStrategy::kTransactionWindow);
  EXPECT_FALSE(slice.empty());
  EXPECT_LT(stats.elements_examined, warehouse->size() / 2);

  // 6. Algebra on top: restrict to one sensor and check stats.
  auto sensor1 = Restrict(warehouse->elements(), [](const Tuple& t) {
    return t.at(0).AsInt64() == 1;
  });
  EXPECT_EQ(sensor1.size(), 40u);

  // 7. Operational hygiene: vacuum does nothing (nothing deleted), stats
  // line up across the chain.
  ASSERT_OK_AND_ASSIGN(size_t removed, warehouse->VacuumBefore(TimePoint::Max()));
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(feed->GetStats().elements, warehouse->GetStats().elements);
}

}  // namespace
}  // namespace tempspec
