#include "timex/calendar.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace tempspec {

namespace {

// Floor division/modulo for possibly-negative microsecond counts.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  // Hinnant's days_from_civil, shifting the year so the "era" starts Mar 1.
  int64_t yy = y;
  yy -= m <= 2;
  const int64_t era = (yy >= 0 ? yy : yy - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(yy - era * 400);             // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int32_t* year, int32_t* month, int32_t* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);           // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);           // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                        // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                             // [1, 12]
  *year = static_cast<int32_t>(y + (m <= 2));
  *month = static_cast<int32_t>(m);
  *day = static_cast<int32_t>(d);
}

bool IsLeapYear(int32_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

CivilDateTime ToCivil(TimePoint tp) {
  CivilDateTime c;
  const int64_t micros = tp.micros();
  const int64_t days = FloorDiv(micros, kMicrosPerDay);
  int64_t rem = FloorMod(micros, kMicrosPerDay);
  CivilFromDays(days, &c.year, &c.month, &c.day);
  c.hour = static_cast<int32_t>(rem / kMicrosPerHour);
  rem %= kMicrosPerHour;
  c.minute = static_cast<int32_t>(rem / kMicrosPerMinute);
  rem %= kMicrosPerMinute;
  c.second = static_cast<int32_t>(rem / kMicrosPerSecond);
  c.micro = static_cast<int32_t>(rem % kMicrosPerSecond);
  return c;
}

TimePoint FromCivil(const CivilDateTime& c) {
  const int64_t days = DaysFromCivil(c.year, c.month, c.day);
  int64_t micros = days * kMicrosPerDay;
  micros += c.hour * kMicrosPerHour;
  micros += c.minute * kMicrosPerMinute;
  micros += c.second * kMicrosPerSecond;
  micros += c.micro;
  return TimePoint::FromMicros(micros);
}

TimePoint AddMonths(TimePoint tp, int64_t months) {
  CivilDateTime c = ToCivil(tp);
  int64_t linear = static_cast<int64_t>(c.year) * 12 + (c.month - 1) + months;
  c.year = static_cast<int32_t>(FloorDiv(linear, 12));
  c.month = static_cast<int32_t>(FloorMod(linear, 12)) + 1;
  const int32_t dim = DaysInMonth(c.year, c.month);
  if (c.day > dim) c.day = dim;
  return FromCivil(c);
}

int64_t WholeMonthsBetween(TimePoint from, TimePoint to) {
  // Floor semantics: the largest k with AddMonths(from, k) <= to, valid for
  // either ordering of the operands. The civil-field estimate is off by at
  // most one month, so the adjustment loops run O(1) times.
  const CivilDateTime a = ToCivil(from);
  const CivilDateTime b = ToCivil(to);
  int64_t est = (static_cast<int64_t>(b.year) - a.year) * 12 + (b.month - a.month);
  while (AddMonths(from, est) > to) --est;
  while (AddMonths(from, est + 1) <= to) ++est;
  return est;
}

Result<TimePoint> ParseTimePoint(const std::string& text) {
  CivilDateTime c;
  int micro = 0;
  char frac[16] = {0};
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%9s", &c.year, &c.month,
                      &c.day, &c.hour, &c.minute, &c.second, frac);
  if (n < 3) {
    return Status::InvalidArgument("cannot parse time point: '", text, "'");
  }
  if (n >= 7) {
    // Right-pad the fractional field to microseconds.
    char padded[7] = {'0', '0', '0', '0', '0', '0', 0};
    for (int i = 0; i < 6 && frac[i] != 0; ++i) padded[i] = frac[i];
    micro = std::atoi(padded);
  }
  if (c.month < 1 || c.month > 12) {
    return Status::InvalidArgument("month out of range in '", text, "'");
  }
  if (c.day < 1 || c.day > DaysInMonth(c.year, c.month)) {
    return Status::InvalidArgument("day out of range in '", text, "'");
  }
  if (c.hour < 0 || c.hour > 23 || c.minute < 0 || c.minute > 59 || c.second < 0 ||
      c.second > 59) {
    return Status::InvalidArgument("time of day out of range in '", text, "'");
  }
  c.micro = micro;
  return FromCivil(c);
}

std::string FormatTimePoint(TimePoint tp) {
  if (tp.IsMin()) return "-inf";
  if (tp.IsMax()) return "+inf";
  const CivilDateTime c = ToCivil(tp);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06d", c.year,
                c.month, c.day, c.hour, c.minute, c.second, c.micro);
  return buf;
}

}  // namespace tempspec
