// E6 — Non-decreasing relations answer valid-time range queries by binary
// search on the insertion order (Section 3.2's ordering family).
//
// Fixed-size non-decreasing relation; the query range width (selectivity)
// sweeps from a point query to 10% of the history. Compares binary search
// (declared ordering), the valid-time interval index, and the full scan.
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::FullScanPlan;
using tempspec::bench::Require;

namespace {

constexpr int64_t kElements = 32768;

ScenarioRelation MakeNonDecreasing() {
  ScenarioRelation out;
  out.clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(0),
                                             Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Require(Schema::Make("ordered_events",
                           {AttributeDef{"id", ValueType::kInt64,
                                         AttributeRole::kTimeInvariantKey}},
                           ValidTimeKind::kEvent, Granularity::Second()));
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  options.clock = out.clock;
  out.relation = Require(TemporalRelation::Open(std::move(options)));
  Random rng(23);
  int64_t vt = 0;
  for (int64_t i = 0; i < kElements; ++i) {
    vt += rng.Uniform(0, 4);
    Require(out.relation
                ->InsertEvent(i % 8, TimePoint::FromSeconds(vt),
                              Tuple{int64_t{i % 8}})
                .status());
  }
  return out;
}

void RunRangeQueries(benchmark::State& state, ExecutionStrategy strategy) {
  ScenarioRelation scenario = MakeNonDecreasing();
  QueryExecutor exec(*scenario.relation);
  const int64_t width_s = state.range(0);
  QueryStats stats;
  size_t i = 0;
  size_t results = 0;
  for (auto _ : state) {
    const TimePoint lo = scenario->elements()[(i * 211) % scenario->size()]
                             .valid.at();
    ++i;
    const TimePoint hi = lo + Duration::Seconds(width_s);
    PlanChoice plan;
    switch (strategy) {
      case ExecutionStrategy::kFullScan:
        plan = FullScanPlan();
        break;
      case ExecutionStrategy::kValidIndex:
        plan = PlanChoice{ExecutionStrategy::kValidIndex, TimeInterval::All(), ""};
        break;
      default:
        plan = exec.optimizer().PlanValidRange(lo, hi);
        break;
    }
    auto result = exec.ValidRangeWith(plan, lo, hi, &stats);
    results += result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["range_seconds"] = benchmark::Counter(static_cast<double>(width_s));
  state.counters["results_per_query"] =
      benchmark::Counter(static_cast<double>(results) / state.iterations());
  state.counters["elements_examined_per_query"] = benchmark::Counter(
      static_cast<double>(stats.elements_examined) / state.iterations());
}

void BM_ValidRange_NonDecreasing_BinarySearch(benchmark::State& state) {
  RunRangeQueries(state, ExecutionStrategy::kMonotoneBinarySearch);
}
void BM_ValidRange_NonDecreasing_ValidIndex(benchmark::State& state) {
  RunRangeQueries(state, ExecutionStrategy::kValidIndex);
}
void BM_ValidRange_NonDecreasing_FullScan(benchmark::State& state) {
  RunRangeQueries(state, ExecutionStrategy::kFullScan);
}

}  // namespace

// Width 1s (point-ish) to ~6554s (~10% of the ~65536s history).
BENCHMARK(BM_ValidRange_NonDecreasing_BinarySearch)->Arg(1)->Arg(64)->Arg(1024)->Arg(6554);
BENCHMARK(BM_ValidRange_NonDecreasing_ValidIndex)->Arg(1)->Arg(64)->Arg(1024)->Arg(6554);
BENCHMARK(BM_ValidRange_NonDecreasing_FullScan)->Arg(1)->Arg(64)->Arg(1024)->Arg(6554);

TEMPSPEC_BENCH_MAIN("e6_nondecreasing");
