#include "timex/duration.h"

#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <cstdio>

namespace tempspec {

bool Duration::IsNegative() const {
  if (months_ == 0) return micros_ < 0;
  if (micros_ == 0) return months_ < 0;
  if ((months_ < 0) == (micros_ < 0)) return months_ < 0;
  // Mixed signs: compare by effect on an arbitrary fixed anchor. A calendar
  // month spans 28..31 days, so the epoch (31-day January) gives the
  // magnitude we compare the fixed part against.
  const TimePoint anchor = TimePoint::FromMicros(0);
  return AddDuration(anchor, *this) < anchor;
}

std::string Duration::ToString() const {
  if (IsZero()) return "0";
  std::string out;
  char buf[32];
  if (months_ != 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "mo", months_);
    out += buf;
  }
  if (micros_ != 0) {
    if (!out.empty() && micros_ > 0) out += "+";
    int64_t us = micros_;
    if (us % kMicrosPerDay == 0) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "d", us / kMicrosPerDay);
    } else if (us % kMicrosPerHour == 0) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "h", us / kMicrosPerHour);
    } else if (us % kMicrosPerMinute == 0) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "m", us / kMicrosPerMinute);
    } else if (us % kMicrosPerSecond == 0) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "s", us / kMicrosPerSecond);
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "us", us);
    }
    out += buf;
  }
  return out;
}

Result<Duration> Duration::Parse(const std::string& text) {
  if (text == "0") return Duration::Zero();  // ToString's zero form
  Duration total;
  size_t pos = 0;
  const std::string s = text;
  bool any = false;
  while (pos < s.size()) {
    // Optional sign, digits, unit letters; components separated by '+'.
    if (s[pos] == '+') {
      ++pos;
      continue;
    }
    int64_t sign = 1;
    if (s[pos] == '-') {
      sign = -1;
      ++pos;
    }
    size_t digits = pos;
    while (digits < s.size() && std::isdigit(static_cast<unsigned char>(s[digits]))) {
      ++digits;
    }
    if (digits == pos) {
      return Status::InvalidArgument("cannot parse duration: '", text, "'");
    }
    const int64_t count = sign * std::atoll(s.substr(pos, digits - pos).c_str());
    size_t unit_end = digits;
    while (unit_end < s.size() &&
           std::isalpha(static_cast<unsigned char>(s[unit_end]))) {
      ++unit_end;
    }
    const std::string unit = s.substr(digits, unit_end - digits);
    pos = unit_end;
    any = true;
    if (unit == "us" || unit == "usec") {
      total = total + Duration::Micros(count);
    } else if (unit == "ms") {
      total = total + Duration::Millis(count);
    } else if (unit == "s" || unit == "sec") {
      total = total + Duration::Seconds(count);
    } else if (unit == "min" || unit == "m") {
      total = total + Duration::Minutes(count);
    } else if (unit == "h" || unit == "hr") {
      total = total + Duration::Hours(count);
    } else if (unit == "d" || unit == "day" || unit == "days") {
      total = total + Duration::Days(count);
    } else if (unit == "w" || unit == "week" || unit == "weeks") {
      total = total + Duration::Weeks(count);
    } else if (unit == "mo" || unit == "month" || unit == "months") {
      total = total + Duration::Months(count);
    } else if (unit == "y" || unit == "yr" || unit == "year" || unit == "years") {
      total = total + Duration::Years(count);
    } else {
      return Status::InvalidArgument("unknown duration unit '", unit, "' in '",
                                     text, "'");
    }
  }
  if (!any) {
    return Status::InvalidArgument("empty duration: '", text, "'");
  }
  return total;
}

TimePoint AddDuration(TimePoint tp, Duration d) {
  if (tp.IsMin() || tp.IsMax()) return tp;  // sentinels absorb arithmetic
  TimePoint out = tp;
  if (d.months() != 0) out = AddMonths(out, d.months());
  if (d.micros() != 0) out = TimePoint::FromMicros(out.micros() + d.micros());
  return out;
}

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ToString(); }

}  // namespace tempspec
