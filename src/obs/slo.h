// SLO health plane: declared latency objectives and a burn-rate watchdog.
//
// An objective is "p99 latency for relation R stays under X ms" —
// equivalently, at most 1% of R's queries may exceed X ms (the error
// budget). Objectives are declared by configuration (tools/tempspec_serve
// --slo / the simulator's tenant table), not by DDL: schema replay through
// schemas.sql must round-trip exactly, and an operator concern like an SLO
// target does not belong in the durable schema.
//
// The watchdog reads the labeled latency family (obs/metrics.h): per
// relation it merges every {kind, protocol} series, then judges two windows:
//
//   total   — every observation since process start (or Reset). The verdict
//             is "ok" iff the fraction of observations above the objective
//             is within the 1% budget. This is the verdict the simulator
//             reconciles against its own client-side p99 gate.
//   window  — the delta since the previous Evaluate() call (the sampler
//             thread calls Evaluate per tick). burn_rate is the violating
//             fraction divided by the 1% budget: 1.0 means the budget is
//             being spent exactly as fast as it accrues; >1 means burning.
//
// Bucket coarseness makes the watchdog deliberately lenient: a log2 bucket
// that straddles the objective is counted as conforming, so "burning" is
// only reported when observations land in buckets *entirely* above the
// objective. A lenient server verdict can therefore never contradict a
// passing client-side gate.
//
// Surfaces: /debug/health (JSON), SHOW HEALTH (text), and the
// tempspec.slo.* gauge family updated on every Evaluate().
#ifndef TEMPSPEC_OBS_SLO_H_
#define TEMPSPEC_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tempspec {

/// \brief One relation's judged objective, as of the last Evaluate().
struct SloVerdict {
  std::string relation;
  double objective_p99_ms = 0.0;

  // Since process start (or Reset):
  uint64_t total_count = 0;
  uint64_t total_violations = 0;  // observations in buckets above objective
  uint64_t total_p99_micros = 0;  // upper-bound estimate (log2 buckets)
  bool total_ok = true;           // violations within the 1% budget

  // Since the previous Evaluate():
  uint64_t window_count = 0;
  uint64_t window_violations = 0;
  uint64_t window_p99_micros = 0;
  double burn_rate = 0.0;  // violating fraction / 1% budget
  bool burning = false;    // burn_rate > 1.0

  std::string ToJson() const;
};

/// \brief Declared objectives + burn-rate evaluation state. Mutex-guarded;
/// touched by the sampler tick and telemetry scrapes, never per query.
class SloRegistry {
 public:
  /// \brief Fraction of queries allowed above the objective (p99 => 1%).
  static constexpr double kBudgetFraction = 0.01;

  /// \brief Process-wide instance (config flags declare into it, telemetry
  /// endpoints read it). Tests use free instances.
  static SloRegistry& Instance();

  SloRegistry() = default;
  SloRegistry(const SloRegistry&) = delete;
  SloRegistry& operator=(const SloRegistry&) = delete;

  /// \brief Declares (or re-targets) an objective for a relation.
  void Declare(const std::string& relation, double p99_ms);
  void Remove(const std::string& relation);
  std::map<std::string, double> Objectives() const;

  /// \brief Parses a "rel=12.5,other=40" objective spec (the --slo flag /
  /// TEMPSPEC_SERVE_SLO format) into Declare() calls. Returns false on any
  /// malformed entry (valid entries before it are still declared).
  bool DeclareFromSpec(const std::string& spec);

  /// \brief Re-judges every declared objective against the labeled latency
  /// family and updates the tempspec.slo.* gauges. Called by the sampler
  /// tick and on demand by SHOW HEALTH / /debug/health.
  std::vector<SloVerdict> Evaluate();

  /// \brief The verdicts from the last Evaluate() (no re-evaluation).
  std::vector<SloVerdict> Current() const;

  /// \brief Full /debug/health body: {"unix_micros":...,"slos":[...],
  /// "series":[per {relation,kind,protocol} latency digests]}.
  std::string RenderHealthJson();

  /// \brief Drops objectives, verdicts, and window baselines (tests).
  void Clear();

 private:
  struct Baseline {
    uint64_t count = 0;
    uint64_t violations = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, double> objectives_;
  std::map<std::string, Baseline> baselines_;
  std::vector<SloVerdict> current_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_SLO_H_
