#!/usr/bin/env bash
# Smoke check for the live telemetry plane: start the ddl_tour example with
# the exporter enabled, scrape /healthz, /metrics, /varz, /debug/events,
# /debug/traces, /debug/health, and /metrics/history over HTTP, and validate
# the Prometheus text with tools/check_metrics_text.py (including the
# labeled tempspec_query_latency series), the flight events with
# tools/check_flight_json.py, and the health plane with
# tools/check_health_json.py. This proves the whole chain — engine
# instrumentation -> registry -> exporter -> valid exposition — on a real
# process, not a unit-test snapshot.
#
# Usage: tools/metrics_smoke.sh [build_dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
TOUR="$BUILD_DIR/examples/ddl_tour"
CHECKER="$(dirname "$0")/check_metrics_text.py"

if [ ! -x "$TOUR" ]; then
  echo "no ddl_tour binary at $TOUR (build with the default CMake config first)" >&2
  exit 2
fi

OUT_DIR="$(mktemp -d)"
PORT_FILE="$OUT_DIR/port"
cleanup() {
  [ -n "${TOUR_PID:-}" ] && kill "$TOUR_PID" 2>/dev/null
  rm -rf "$OUT_DIR"
}
trap cleanup EXIT

# Port 0 = ephemeral; the exporter writes the resolved port to PORTFILE.
# The linger keeps the finished tour alive long enough to scrape.
TEMPSPEC_EXPORTER_PORT=0 \
TEMPSPEC_EXPORTER_PORTFILE="$PORT_FILE" \
TEMPSPEC_EXPORTER_LINGER_MS=30000 \
TEMPSPEC_SLOWLOG_MICROS=0 \
    "$TOUR" > "$OUT_DIR/tour.out" 2>&1 &
TOUR_PID=$!

port=""
for _ in $(seq 1 100); do
  if [ -s "$PORT_FILE" ]; then
    port="$(cat "$PORT_FILE")"
    break
  fi
  if ! kill -0 "$TOUR_PID" 2>/dev/null; then
    echo "ddl_tour exited before binding the exporter:" >&2
    cat "$OUT_DIR/tour.out" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "exporter never wrote its port file" >&2
  exit 1
fi

failures=0

health="$(curl -sf "http://127.0.0.1:$port/healthz")"
if [ "$health" != "ok" ]; then
  echo "/healthz: FAIL: got '$health'"
  failures=$((failures + 1))
else
  echo "/healthz: OK"
fi

if ! curl -sf "http://127.0.0.1:$port/metrics" -o "$OUT_DIR/metrics.txt"; then
  echo "/metrics: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$CHECKER" "$OUT_DIR/metrics.txt" || failures=$((failures + 1))
  # The tour executed statements, so the engine's own counters must be there
  # (guards against an exporter that serves an empty-but-valid page).
  if ! grep -q "^querylang_statements " "$OUT_DIR/metrics.txt"; then
    echo "/metrics: FAIL: no querylang_statements sample in the scrape"
    failures=$((failures + 1))
  fi
  # And so must the labeled latency family those statements feed.
  if ! grep -q "^tempspec_query_latency_bucket{" "$OUT_DIR/metrics.txt"; then
    echo "/metrics: FAIL: no labeled tempspec_query_latency series"
    failures=$((failures + 1))
  fi
fi

if ! curl -sf "http://127.0.0.1:$port/varz" -o "$OUT_DIR/varz.json"; then
  echo "/varz: FAIL: curl error"
  failures=$((failures + 1))
elif ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$OUT_DIR/varz.json"; then
  echo "/varz: FAIL: invalid JSON"
  failures=$((failures + 1))
else
  echo "/varz: OK"
fi

# The debug plane: the flight-recorder ring (schema-checked; an OFF tree
# legitimately serves an empty page) and the retained-trace ring.
if ! curl -sf "http://127.0.0.1:$port/debug/events" -o "$OUT_DIR/events.jsonl"; then
  echo "/debug/events: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$(dirname "$0")/check_flight_json.py" "$OUT_DIR/events.jsonl" \
    || failures=$((failures + 1))
fi

if ! curl -sf "http://127.0.0.1:$port/debug/traces" -o "$OUT_DIR/traces.jsonl"; then
  echo "/debug/traces: FAIL: curl error"
  failures=$((failures + 1))
elif ! python3 -c "
import json, sys
for line in open(sys.argv[1], encoding='utf-8'):
    json.loads(line)
print('/debug/traces: OK')" "$OUT_DIR/traces.jsonl"; then
  echo "/debug/traces: FAIL: invalid JSONL"
  failures=$((failures + 1))
fi

# The health plane: the tour declares no SLOs (an empty verdict list is
# valid) but its statements must have produced labeled latency series.
if ! curl -sf "http://127.0.0.1:$port/debug/health" -o "$OUT_DIR/health.json"; then
  echo "/debug/health: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$(dirname "$0")/check_health_json.py" --health --min-series 1 \
    "$OUT_DIR/health.json" || failures=$((failures + 1))
fi

# No sampler runs in the tour, so the history ring is legitimately empty;
# the checker still gates the JSONL schema of whatever is served.
if ! curl -sf "http://127.0.0.1:$port/metrics/history" -o "$OUT_DIR/history.jsonl"; then
  echo "/metrics/history: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$(dirname "$0")/check_health_json.py" --history \
    "$OUT_DIR/history.jsonl" || failures=$((failures + 1))
fi

kill "$TOUR_PID" 2>/dev/null
wait "$TOUR_PID" 2>/dev/null

if [ $failures -ne 0 ]; then
  echo "metrics smoke: $failures failure(s)"
  exit 1
fi
echo "metrics smoke: exporter served valid /metrics, /varz, /healthz, /debug, and health-plane pages"
