// Regenerates every figure of the paper and machine-checks its content.
//
//   Figure 1  — the twelve isolated-event regions of the (tt, vt) plane
//   Figure 2  — the event-taxonomy generalization lattice
//   Figure 3  — the inter-event ordering lattice
//   Figure 4  — the inter-event regularity lattice
//   Figure 5  — the inter-interval (Allen-based) lattice
//   Theorem (Section 3.1) — the 0/1/2-line completeness enumeration
//
// The figures are conceptual, so "reproduction" means structural equality:
// each pane/edge is printed AND verified (band classification for Figure 1
// and the theorem; machine-checkable implications for the lattices). Exit
// status is non-zero if any check fails.
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "spec/enumeration.h"
#include "spec/event_spec.h"
#include "spec/lattice.h"

using namespace tempspec;

namespace {

int g_failures = 0;
int g_checks = 0;

void Check(bool ok, const std::string& what) {
  ++g_checks;
  if (!ok) {
    ++g_failures;
    std::cout << "  CHECK FAILED: " << what << "\n";
  }
}

void Figure1() {
  std::cout << "=== Figure 1: isolated-event regions ===\n";
  const auto regions = EnumerateEventRegions();
  std::cout << RenderFigure1(regions);
  Check(regions.size() == 12, "12 panes");
  std::set<EventSpecKind> kinds;
  for (const auto& r : regions) kinds.insert(r.kind);
  Check(kinds.size() == 12, "panes classify to 12 distinct types");
  std::cout << "\n";
}

void Theorem() {
  std::cout << "=== Section 3.1 completeness theorem ===\n";
  const auto regions = EnumerateEventRegions();
  int zero = 0, one = 0, two = 0;
  for (const auto& r : regions) {
    if (r.construction.rfind("zero", 0) == 0) ++zero;
    if (r.construction.rfind("one", 0) == 0) ++one;
    if (r.construction.rfind("two", 0) == 0) ++two;
  }
  std::printf("zero lines: %d region (general)\n", zero);
  std::printf("one line:   %d regions\n", one);
  std::printf("two lines:  %d regions\n", two);
  std::printf("total:      %d = 11 specialized types + general\n", one + two + zero);
  Check(zero == 1 && one == 6 && two == 5, "1 + 6 + 5 enumeration");
  std::cout << "\n";
}

void PrintLattice(const char* title, const SpecLattice& lattice,
                  size_t expected_nodes) {
  std::cout << "=== " << title << " ===\n";
  std::cout << lattice.ToString();
  std::printf("nodes: %zu, edges: %zu, roots: %zu, leaves: %zu\n\n",
              lattice.nodes().size(), lattice.edges().size(),
              lattice.Roots().size(), lattice.Leaves().size());
  Check(lattice.nodes().size() == expected_nodes,
        std::string(title) + " node count");
  Check(lattice.Roots().size() == 1, std::string(title) + " single root");
}

}  // namespace

int main(int argc, char** argv) {
  // Not a google-benchmark binary, but it honors the fleet-wide `--json
  // [path]` contract: one "benchmark" whose counters are the check tallies.
  std::string json_path;
  const bool want_json =
      bench::ExtractJsonFlag(&argc, argv, "figures", &json_path);

  Figure1();
  Theorem();
  PrintLattice("Figure 2: event taxonomy", SpecLattice::EventTaxonomy(), 14);
  PrintLattice("Figure 3: inter-event orderings",
               SpecLattice::InterEventOrderings(), 4);
  PrintLattice("Figure 4: inter-event regularity",
               SpecLattice::InterEventRegularity(), 7);
  PrintLattice("Figure 5: inter-interval taxonomy",
               SpecLattice::InterIntervalTaxonomy(), 17);

  if (want_json) {
    bench::BenchResult r;
    r.name = "figures/structural_checks";
    r.runs = 1;
    r.iterations = 1;
    r.counters["checks"] = g_checks;
    r.counters["failures"] = g_failures;
    if (!bench::WriteBenchJson(json_path, "figures", {r})) return 1;
  }

  if (g_failures == 0) {
    std::cout << "All figure reproductions verified.\n";
    return 0;
  }
  std::cout << g_failures << " checks failed.\n";
  return 1;
}
