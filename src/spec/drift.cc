#include "spec/drift.h"

#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "spec/lattice.h"

namespace tempspec {

namespace {

#ifdef TEMPSPEC_METRICS
// The drift metric names embed the relation name, so the handles cannot be
// cached in the function-local statics the TS_* macros use; the monitor
// caches them as members-by-closure here instead (registration is one
// mutexed map lookup at monitor construction, updates are lock-free).
std::string DriftMetricName(const char* what, const std::string& relation) {
  return std::string("tempspec.drift.") + what + "." + relation;
}
#endif

}  // namespace

std::string DriftReport::ToString() const {
  std::ostringstream ss;
  ss << "relation " << relation << "\n";
  ss << "  declared: "
     << (has_declaration ? EventSpecKindToString(declared) : "(none)") << "\n";
  if (observed_count == 0) {
    ss << "  observed: (no data)\n";
  } else {
    ss << "  observed: " << EventSpecKindToString(observed) << " over "
       << observed_count << " stamps, offsets [" << profile.min_offset_us
       << "us, " << profile.max_offset_us << "us]\n";
  }
  if (has_declaration) {
    ss << "  state: "
       << (observed_count == 0 ? "no data"
                               : (conforming ? "conforming" : "DRIFTED"))
       << ", lattice distance " << lattice_distance << ", violations "
       << violations << "\n";
  }
  ss << "  figure-1 occupancy:\n";
  for (const DriftRegionCount& r : regions) {
    ss << "    " << r.count << "  " << EventSpecKindToString(r.kind) << " ["
       << r.construction << "]\n";
  }
  return ss.str();
}

size_t EventKindLatticeDistance(EventSpecKind a, EventSpecKind b) {
  auto d = SpecLattice::EventTaxonomy().Distance(EventSpecKindToString(a),
                                                 EventSpecKindToString(b));
  // Every kind is a node of the (connected) Figure-2 lattice; Distance can
  // only fail on foreign names.
  return d.ok() ? *d : 0;
}

bool EventKindConforms(EventSpecKind declared, EventSpecKind observed) {
  return SpecLattice::EventTaxonomy().IsDescendant(
      EventSpecKindToString(declared), EventSpecKindToString(observed));
}

RelationDriftMonitor::RelationDriftMonitor(std::string relation_name,
                                           const SpecializationSet& declared,
                                           Granularity granularity,
                                           Duration delta_small,
                                           Duration delta_large)
    : relation_name_(std::move(relation_name)),
      granularity_(granularity),
      panes_(EnumerateEventRegions(delta_small, delta_large)),
      profile_(granularity),
      pane_counts_(panes_.size(), 0) {
  for (const EventSpecialization& spec : declared.event_specs()) {
    if (spec.anchor() != TransactionAnchor::kInsertion) continue;
    declared_specs_.push_back(spec);
  }
  if (!declared_specs_.empty()) {
    has_declaration_ = true;
    // The declaration as a whole is the intersection of the declared bands;
    // classify it to one kind for the lattice comparison. Any degenerate
    // declaration dominates (its band is the diagonal).
    Band joint = Band::All();
    bool degenerate = false;
    for (const EventSpecialization& spec : declared_specs_) {
      joint = joint.Intersect(spec.band());
      degenerate = degenerate || spec.kind() == EventSpecKind::kDegenerate;
    }
    declared_kind_ = degenerate ? EventSpecKind::kDegenerate
                                : EventSpecialization::ClassifyBand(joint);
  }
}

bool RelationDriftMonitor::SatisfiesDeclared(TimePoint tt, TimePoint vt) const {
  for (const EventSpecialization& spec : declared_specs_) {
    const bool ok = spec.kind() == EventSpecKind::kDegenerate
                        ? granularity_.Same(tt, vt)
                        : spec.Satisfies(tt, vt);
    if (!ok) return false;
  }
  return true;
}

void RelationDriftMonitor::Observe(TimePoint tt, TimePoint vt) {
  EventSpecKind observed;
  size_t distance;
  bool violated;
  {
    std::lock_guard<std::mutex> lock(mu_);
    profile_.Observe(tt, vt);
    for (size_t i = 0; i < panes_.size(); ++i) {
      // The degenerate pane uses chronon-equality at the relation's
      // granularity (mirroring CheckElement); every other pane is the raw
      // Figure-1 band test the property-test oracle checks.
      const bool in_pane = panes_[i].kind == EventSpecKind::kDegenerate
                               ? granularity_.Same(tt, vt)
                               : panes_[i].band.Contains(tt, vt);
      if (in_pane) ++pane_counts_[i];
    }
    violated = has_declaration_ && !SatisfiesDeclared(tt, vt);
    if (violated) ++violations_;
    observed = profile_.ObservedKind();
    distance = has_declaration_
                   ? EventKindLatticeDistance(declared_kind_, observed)
                   : 0;
    if (violated && violations_ == 1) {
      // The conforming→drifted transition is a decision-plane milestone: it
      // flips Drifted() and thus the optimizer's specialization gate, so the
      // flight recorder keeps the exact moment and relation.
      TS_FLIGHT(FlightCategory::kDrift, FlightCode::kDriftVerdict, observed,
                distance, relation_name_);
    }
  }
#ifdef TEMPSPEC_METRICS
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetGauge(DriftMetricName("observed_kind", relation_name_))
      .Set(static_cast<int64_t>(observed));
  reg.GetGauge(DriftMetricName("lattice_distance", relation_name_))
      .Set(static_cast<int64_t>(distance));
  reg.GetCounter(DriftMetricName("observed_stamps", relation_name_))
      .Increment();
  if (violated) {
    reg.GetCounter(DriftMetricName("violations", relation_name_)).Increment();
  }
#else
  static_cast<void>(observed);
  static_cast<void>(distance);
  static_cast<void>(violated);
#endif
}

bool RelationDriftMonitor::Drifted() const {
  if (!has_declaration_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return violations_ > 0;
}

DriftReport RelationDriftMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftReport report;
  report.relation = relation_name_;
  report.has_declaration = has_declaration_;
  report.declared = declared_kind_;
  report.profile = profile_.Profile();
  report.observed_count = profile_.count();
  report.observed = profile_.ObservedKind();
  report.violations = violations_;
  if (has_declaration_ && report.observed_count > 0) {
    report.lattice_distance =
        EventKindLatticeDistance(declared_kind_, report.observed);
    report.conforming = violations_ == 0;
  }
  report.regions.reserve(panes_.size());
  for (size_t i = 0; i < panes_.size(); ++i) {
    report.regions.push_back(DriftRegionCount{
        panes_[i].construction, panes_[i].kind, pane_counts_[i]});
  }
  return report;
}

}  // namespace tempspec
