// Valid-time interval index: stabbing and overlap queries.
//
// Implemented as an implicit augmented binary structure over an array of
// intervals sorted by begin point, where every prefix position carries the
// maximum end seen in its subtree — giving O(log n + k) stabbing queries.
// Inserts go to a small unsorted delta buffer (scanned linearly) that is
// merged into the sorted core once it grows past a fraction of the core, so
// amortized insertion stays O(log n)-ish without a full dynamic tree.
#ifndef TEMPSPEC_INDEX_INTERVAL_INDEX_H_
#define TEMPSPEC_INDEX_INTERVAL_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "timex/interval.h"
#include "timex/time_point.h"

namespace tempspec {

/// \brief Index of [begin, end) intervals with payload values.
class IntervalIndex {
 public:
  struct Entry {
    int64_t begin;
    int64_t end;
    uint64_t value;
  };

  void Insert(TimePoint begin, TimePoint end, uint64_t value);
  void Insert(const TimeInterval& iv, uint64_t value) {
    Insert(iv.begin(), iv.end(), value);
  }

  /// \brief Values of all intervals containing `tp` (begin <= tp < end),
  /// in ascending value order.
  std::vector<uint64_t> Stab(TimePoint tp) const;

  /// \brief Values of all intervals overlapping [lo, hi), in ascending value
  /// order. Values are element positions in every engine use, so sorted
  /// output lets query execution consume probe results in position order
  /// with no per-query sort.
  std::vector<uint64_t> Overlapping(TimePoint lo, TimePoint hi) const;

  size_t size() const { return core_.size() + delta_.size(); }
  size_t delta_size() const { return delta_.size(); }

  /// \brief Forces the delta buffer into the sorted core.
  void Compact();

 private:
  void OverlapCore(size_t lo, size_t hi, int64_t qlo, int64_t qhi,
                   std::vector<uint64_t>* out) const;
  void SortHits(std::vector<uint64_t>* out, size_t core_hits) const;
  void Rebuild();
  void BuildMaxEnd(size_t lo, size_t hi);

  std::vector<Entry> core_;       // sorted by begin
  std::vector<int64_t> max_end_;  // max end over the implicit subtree at mid
  std::vector<Entry> delta_;      // unsorted recent inserts
};

}  // namespace tempspec

#endif  // TEMPSPEC_INDEX_INTERVAL_INDEX_H_
