#include "spec/interevent_spec.h"

#include <algorithm>
#include <map>

namespace tempspec {

const char* SpecScopeToString(SpecScope scope) {
  return scope == SpecScope::kPerRelation ? "per relation" : "per surrogate";
}

std::vector<EventStamp> ExtractEventStamps(std::span<const Element> elements,
                                           TransactionAnchor anchor) {
  std::vector<EventStamp> out;
  out.reserve(elements.size());
  for (const Element& e : elements) {
    const TimePoint tt = AnchoredTransactionTime(e, anchor);
    if (anchor == TransactionAnchor::kDeletion && tt.IsMax()) continue;
    out.push_back(EventStamp{tt, e.valid.at(), e.object_surrogate});
  }
  return out;
}

namespace {

// Groups stamps by partition (or one group for per-relation scope) and sorts
// each group by transaction time.
std::map<ObjectSurrogate, std::vector<EventStamp>> GroupStamps(
    std::span<const EventStamp> stamps, SpecScope scope) {
  std::map<ObjectSurrogate, std::vector<EventStamp>> groups;
  for (const auto& s : stamps) {
    const ObjectSurrogate key =
        scope == SpecScope::kPerRelation ? 0 : s.partition;
    groups[key].push_back(s);
  }
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const EventStamp& a, const EventStamp& b) {
                       return a.tt < b.tt;
                     });
  }
  return groups;
}

}  // namespace

// ---------------------------------------------------------------------------
// Orderings
// ---------------------------------------------------------------------------

const char* OrderingKindToString(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNonDecreasing:
      return "non-decreasing";
    case OrderingKind::kNonIncreasing:
      return "non-increasing";
    case OrderingKind::kSequential:
      return "sequential";
  }
  return "unknown";
}

Status OrderingSpec::CheckStamps(std::span<const EventStamp> stamps) const {
  for (auto& [key, group] : GroupStamps(stamps, scope_)) {
    (void)key;
    // The definitions quantify over all pairs with tt < tt'; all three
    // properties are transitive along the tt order, so checking adjacent
    // pairs (plus a running max for sequential) is equivalent.
    TimePoint running_max = TimePoint::Min();
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      const EventStamp& a = group[i];
      const EventStamp& b = group[i + 1];
      if (a.tt == b.tt) {
        return Status::ConstraintViolation(
            "duplicate transaction time ", a.tt.ToString(),
            " — transaction stamps must be unique");
      }
      switch (kind_) {
        case OrderingKind::kNonDecreasing:
          if (!(a.vt <= b.vt)) {
            return Status::ConstraintViolation(
                "non-decreasing violated: vt ", b.vt.ToString(), " at tt ",
                b.tt.ToString(), " precedes earlier vt ", a.vt.ToString());
          }
          break;
        case OrderingKind::kNonIncreasing:
          if (!(a.vt >= b.vt)) {
            return Status::ConstraintViolation(
                "non-increasing violated: vt ", b.vt.ToString(), " at tt ",
                b.tt.ToString(), " exceeds earlier vt ", a.vt.ToString());
          }
          break;
        case OrderingKind::kSequential: {
          running_max = std::max(running_max, std::max(a.tt, a.vt));
          const TimePoint next_min = std::min(b.tt, b.vt);
          if (!(running_max <= next_min)) {
            return Status::ConstraintViolation(
                "sequential violated at tt ", b.tt.ToString(), ": max(tt,vt) ",
                running_max.ToString(), " of earlier elements exceeds min(tt,vt) ",
                next_min.ToString());
          }
          break;
        }
      }
    }
  }
  return Status::OK();
}

std::string OrderingSpec::ToString() const {
  std::string out = scope_ == SpecScope::kPerRelation ? "globally " : "per surrogate ";
  out += OrderingKindToString(kind_);
  return out;
}

Status OnlineOrderingChecker::Check(const EventStamp& stamp) const {
  const ObjectSurrogate key =
      spec_.scope() == SpecScope::kPerRelation ? 0 : stamp.partition;
  auto it = states_.find(key);
  if (it == states_.end()) return Status::OK();
  const State& st = it->second;
  if (st.has_prev) {
    switch (spec_.kind()) {
      case OrderingKind::kNonDecreasing:
        if (!(stamp.vt >= st.prev_vt)) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: vt ", stamp.vt.ToString(),
              " precedes previous vt ", st.prev_vt.ToString());
        }
        break;
      case OrderingKind::kNonIncreasing:
        if (!(stamp.vt <= st.prev_vt)) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: vt ", stamp.vt.ToString(),
              " exceeds previous vt ", st.prev_vt.ToString());
        }
        break;
      case OrderingKind::kSequential:
        if (!(st.running_max <= std::min(stamp.tt, stamp.vt))) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: max(tt,vt) ",
              st.running_max.ToString(), " of stored elements exceeds min(tt,vt) ",
              std::min(stamp.tt, stamp.vt).ToString());
        }
        break;
    }
  }
  return Status::OK();
}

void OnlineOrderingChecker::Commit(const EventStamp& stamp) {
  const ObjectSurrogate key =
      spec_.scope() == SpecScope::kPerRelation ? 0 : stamp.partition;
  State& st = states_[key];
  st.has_prev = true;
  st.prev_vt = stamp.vt;
  st.running_max = std::max(st.running_max, std::max(stamp.tt, stamp.vt));
}

// ---------------------------------------------------------------------------
// Regularity
// ---------------------------------------------------------------------------

const char* RegularityDimensionToString(RegularityDimension dim) {
  switch (dim) {
    case RegularityDimension::kTransactionTime:
      return "transaction time";
    case RegularityDimension::kValidTime:
      return "valid time";
    case RegularityDimension::kTemporal:
      return "temporal";
  }
  return "unknown";
}

bool IsCongruent(TimePoint a, TimePoint b, Duration unit) {
  return UnitMultiplier(a, b, unit).has_value();
}

std::optional<int64_t> UnitMultiplier(TimePoint a, TimePoint b, Duration unit) {
  if (unit.IsFixed()) {
    const int64_t u = unit.micros();
    const int64_t diff = b.MicrosSince(a);
    if (diff % u != 0) return std::nullopt;
    return diff / u;
  }
  // Calendric unit: find the candidate k from whole-month distance, then
  // verify exactly. A pure-month unit advances monotonically, so the
  // candidate is unique; mixed units are checked around the estimate.
  if (unit.micros() == 0) {
    const int64_t months = WholeMonthsBetween(a, b);
    if (months % unit.months() != 0) return std::nullopt;
    const int64_t k = months / unit.months();
    return (a + unit * k) == b ? std::optional<int64_t>(k) : std::nullopt;
  }
  const int64_t approx_unit =
      unit.months() * 30 * kMicrosPerDay + unit.micros();
  if (approx_unit == 0) return std::nullopt;
  const int64_t est = b.MicrosSince(a) / approx_unit;
  for (int64_t k = est - 2; k <= est + 2; ++k) {
    if ((a + unit * k) == b) return k;
  }
  return std::nullopt;
}

Result<RegularitySpec> RegularitySpec::Make(RegularityDimension dim, Duration unit,
                                            bool strict, SpecScope scope) {
  if (!unit.IsPositive()) {
    return Status::InvalidArgument("regularity time unit must be positive, got ",
                                   unit.ToString());
  }
  return RegularitySpec(dim, unit, strict, scope);
}

Status RegularitySpec::CheckStamps(std::span<const EventStamp> stamps) const {
  for (auto& [key, group] : GroupStamps(stamps, scope_)) {
    (void)key;
    if (group.empty()) continue;

    if (!strict_) {
      // Congruence relative to the group's first stamp is equivalent to the
      // pairwise ∃k definition.
      const EventStamp& anchor = group.front();
      for (const EventStamp& s : group) {
        const auto ktt = UnitMultiplier(anchor.tt, s.tt, unit_);
        const auto kvt = UnitMultiplier(anchor.vt, s.vt, unit_);
        switch (dim_) {
          case RegularityDimension::kTransactionTime:
            if (!ktt) {
              return Status::ConstraintViolation(
                  ToString(), " violated: tt ", s.tt.ToString(),
                  " not a multiple of ", unit_.ToString(), " from ",
                  anchor.tt.ToString());
            }
            break;
          case RegularityDimension::kValidTime:
            if (!kvt) {
              return Status::ConstraintViolation(
                  ToString(), " violated: vt ", s.vt.ToString(),
                  " not a multiple of ", unit_.ToString(), " from ",
                  anchor.vt.ToString());
            }
            break;
          case RegularityDimension::kTemporal:
            if (!ktt || !kvt || *ktt != *kvt) {
              return Status::ConstraintViolation(
                  ToString(), " violated: multipliers differ (tt: ",
                  ktt ? std::to_string(*ktt) : "none", ", vt: ",
                  kvt ? std::to_string(*kvt) : "none", ") at tt ",
                  s.tt.ToString());
            }
            break;
        }
      }
      continue;
    }

    // Strict versions: the chain steps by exactly one unit.
    switch (dim_) {
      case RegularityDimension::kTransactionTime:
        for (size_t i = 0; i + 1 < group.size(); ++i) {
          if (group[i].tt + unit_ != group[i + 1].tt) {
            return Status::ConstraintViolation(
                ToString(), " violated: tt ", group[i + 1].tt.ToString(),
                " does not follow ", group[i].tt.ToString(), " by exactly ",
                unit_.ToString());
          }
        }
        break;
      case RegularityDimension::kValidTime: {
        // Sorted valid times must form a gap-free arithmetic progression
        // with distinct values.
        std::vector<TimePoint> vts;
        vts.reserve(group.size());
        for (const auto& s : group) vts.push_back(s.vt);
        std::sort(vts.begin(), vts.end());
        for (size_t i = 0; i + 1 < vts.size(); ++i) {
          if (vts[i] + unit_ != vts[i + 1]) {
            return Status::ConstraintViolation(
                ToString(), " violated: vt ", vts[i + 1].ToString(),
                " does not follow ", vts[i].ToString(), " by exactly ",
                unit_.ToString());
          }
        }
        break;
      }
      case RegularityDimension::kTemporal:
        for (size_t i = 0; i + 1 < group.size(); ++i) {
          if (group[i].tt + unit_ != group[i + 1].tt ||
              group[i].vt + unit_ != group[i + 1].vt) {
            return Status::ConstraintViolation(
                ToString(), " violated between tt ", group[i].tt.ToString(),
                " and tt ", group[i + 1].tt.ToString(),
                ": both stamps must advance by exactly ", unit_.ToString());
          }
        }
        break;
    }
  }
  return Status::OK();
}

std::string RegularitySpec::ToString() const {
  std::string out = scope_ == SpecScope::kPerRelation ? "" : "per surrogate ";
  if (strict_) out += "strict ";
  out += RegularityDimensionToString(dim_);
  out += " event regular(";
  out += unit_.ToString();
  out += ")";
  return out;
}

Status OnlineRegularityChecker::Check(const EventStamp& stamp) const {
  const ObjectSurrogate key =
      spec_.scope() == SpecScope::kPerRelation ? 0 : stamp.partition;
  auto it = states_.find(key);
  if (it == states_.end() || !it->second.has_anchor) return Status::OK();
  const State& st = it->second;
  const Duration unit = spec_.unit();

  if (!spec_.strict()) {
    const auto ktt = UnitMultiplier(st.tt0, stamp.tt, unit);
    const auto kvt = UnitMultiplier(st.vt0, stamp.vt, unit);
    bool ok = true;
    switch (spec_.dimension()) {
      case RegularityDimension::kTransactionTime:
        ok = ktt.has_value();
        break;
      case RegularityDimension::kValidTime:
        ok = kvt.has_value();
        break;
      case RegularityDimension::kTemporal:
        ok = ktt && kvt && *ktt == *kvt;
        break;
    }
    if (!ok) {
      return Status::ConstraintViolation(spec_.ToString(),
                                         " violated by stamp (tt ",
                                         stamp.tt.ToString(), ", vt ",
                                         stamp.vt.ToString(), ")");
    }
  } else {
    switch (spec_.dimension()) {
      case RegularityDimension::kTransactionTime:
        if (st.last_tt + unit != stamp.tt) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: tt ", stamp.tt.ToString(),
              " must be exactly ", unit.ToString(), " after ",
              st.last_tt.ToString());
        }
        break;
      case RegularityDimension::kValidTime:
        // Admissible only at either end of the progression.
        if (stamp.vt != st.max_vt + unit && stamp.vt != st.min_vt - unit) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: vt ", stamp.vt.ToString(),
              " must extend the progression at ", (st.min_vt - unit).ToString(),
              " or ", (st.max_vt + unit).ToString());
        }
        break;
      case RegularityDimension::kTemporal:
        if (st.last_tt + unit != stamp.tt || st.last_vt + unit != stamp.vt) {
          return Status::ConstraintViolation(
              spec_.ToString(), " violated: both stamps must advance exactly ",
              unit.ToString(), " from (tt ", st.last_tt.ToString(), ", vt ",
              st.last_vt.ToString(), ")");
        }
        break;
    }
  }
  return Status::OK();
}

void OnlineRegularityChecker::Commit(const EventStamp& stamp) {
  const ObjectSurrogate key =
      spec_.scope() == SpecScope::kPerRelation ? 0 : stamp.partition;
  State& st = states_[key];
  if (!st.has_anchor) {
    st.has_anchor = true;
    st.tt0 = stamp.tt;
    st.vt0 = stamp.vt;
    st.min_vt = stamp.vt;
    st.max_vt = stamp.vt;
  } else {
    st.min_vt = std::min(st.min_vt, stamp.vt);
    st.max_vt = std::max(st.max_vt, stamp.vt);
  }
  st.last_tt = stamp.tt;
  st.last_vt = stamp.vt;
}

}  // namespace tempspec
