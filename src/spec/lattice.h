// Generalization/specialization lattices (Figures 2-5).
//
// "A relation type can be specialized into any of the successor relation
// types, and a relation type inherits all the properties of its predecessor
// relation types." The lattices let applications that need only a few
// specializations work at a coarser level, and let the catalog infer every
// property implied by a declared one.
//
// Edges marked derivable are machine-checkable implications (verified by the
// property-test suite); edges marked asserted reproduce the figure as printed
// where the implication depends on the paper's strict-inequality reading.
#ifndef TEMPSPEC_SPEC_LATTICE_H_
#define TEMPSPEC_SPEC_LATTICE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace tempspec {

/// \brief A directed acyclic graph of specialization names; edges point from
/// the more general type to the more specialized type.
class SpecLattice {
 public:
  enum class EdgeKind : uint8_t {
    kDerivable,  // provable from the definitions in this library
    kAsserted,   // drawn in the paper's figure; depends on strictness reading
  };

  struct Edge {
    std::string parent;
    std::string child;
    EdgeKind kind;
  };

  /// \brief Adds a node; idempotent.
  void AddNode(const std::string& name);
  /// \brief Adds parent -> child; creates nodes as needed. Rejects edges that
  /// would create a cycle.
  Status AddEdge(const std::string& parent, const std::string& child,
                 EdgeKind kind = EdgeKind::kDerivable);

  bool HasNode(const std::string& name) const;
  const std::vector<std::string>& nodes() const { return node_order_; }
  const std::vector<Edge>& edges() const { return edges_; }

  std::vector<std::string> ParentsOf(const std::string& name) const;
  std::vector<std::string> ChildrenOf(const std::string& name) const;

  /// \brief True if `descendant` is reachable from `ancestor` (a relation of
  /// type `descendant` inherits all properties of `ancestor`). A node is its
  /// own ancestor.
  bool IsDescendant(const std::string& ancestor, const std::string& descendant) const;

  /// \brief Every ancestor of `name`, i.e. all properties a relation of this
  /// type also has, in topological order from the most general.
  std::vector<std::string> AncestorsOf(const std::string& name) const;

  /// \brief Nodes in a topological order (general types first).
  std::vector<std::string> TopologicalOrder() const;

  /// \brief Length of the shortest undirected path between two nodes — how
  /// many generalization/specialization steps separate the types. 0 when the
  /// nodes are equal; the drift monitor uses this as its "how far has the
  /// data wandered from the declaration" gauge. Fails on unknown nodes;
  /// nodes in disjoint components (impossible in the paper's figures, which
  /// all hang off one root) return OutOfRange.
  Result<size_t> Distance(const std::string& from, const std::string& to) const;

  /// \brief Nodes with no parents / no children.
  std::vector<std::string> Roots() const;
  std::vector<std::string> Leaves() const;

  /// \brief Multi-line rendering: one "parent -> child" per line in
  /// topological order (used by the figure-reproduction benches).
  std::string ToString() const;

  // The four figures of the paper.

  /// \brief Figure 2: the event-based taxonomy (undetermined types).
  static const SpecLattice& EventTaxonomy();
  /// \brief Figure 3: inter-event orderings.
  static const SpecLattice& InterEventOrderings();
  /// \brief Figure 4: inter-event regularity.
  static const SpecLattice& InterEventRegularity();
  /// \brief Figure 5: the inter-interval taxonomy over Allen's relations.
  static const SpecLattice& InterIntervalTaxonomy();

 private:
  std::vector<std::string> node_order_;
  std::set<std::string> node_set_;
  std::vector<Edge> edges_;
  std::map<std::string, std::vector<std::string>> children_;
  std::map<std::string, std::vector<std::string>> parents_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_LATTICE_H_
