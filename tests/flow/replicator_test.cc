#include "flow/replicator.h"

#include <gtest/gtest.h>

#include "spec/inference.h"
#include "testing.h"

namespace tempspec {
namespace {

using testing::T;

SchemaPtr FeedSchema(const std::string& name) {
  return Schema::Make(name,
                      {AttributeDef{"sensor", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey},
                       AttributeDef{"v", ValueType::kDouble,
                                    AttributeRole::kTimeVarying}},
                      ValidTimeKind::kEvent, Granularity::Second())
      .ValueOrDie();
}

TEST(PropagatedBandTest, ShiftsBothSides) {
  // Source band [-120s, -30s], delay [10s, 20s] -> [-140s, -40s].
  const Band source =
      Band::Between(-Duration::Seconds(120), -Duration::Seconds(30));
  ASSERT_OK_AND_ASSIGN(
      Band target,
      PropagatedBand(source, Duration::Seconds(10), Duration::Seconds(20)));
  EXPECT_EQ(target.lower()->offset, -Duration::Seconds(140));
  EXPECT_EQ(target.upper()->offset, -Duration::Seconds(40));
}

TEST(PropagatedBandTest, HalfBoundedAndErrors) {
  ASSERT_OK_AND_ASSIGN(Band retro,
                       PropagatedBand(Band::AtMost(Duration::Zero()),
                                      Duration::Seconds(10), Duration::Seconds(20)));
  EXPECT_FALSE(retro.lower().has_value());
  EXPECT_EQ(retro.upper()->offset, -Duration::Seconds(10));
  EXPECT_FALSE(PropagatedBand(Band::All(), Duration::Seconds(-1),
                              Duration::Seconds(5))
                   .ok());
  EXPECT_FALSE(PropagatedBand(Band::All(), Duration::Seconds(9),
                              Duration::Seconds(5))
                   .ok());
}

TEST(PropagatedSpecTest, DegenerateBecomesDelayedStronglyBounded) {
  // The module-comment example: a degenerate feed replicated with a 10..20s
  // delay is delayed strongly retroactively bounded (10s, 20s) downstream.
  ASSERT_OK_AND_ASSIGN(
      EventSpecialization spec,
      PropagatedSpec(EventSpecialization::Degenerate(), Duration::Seconds(10),
                     Duration::Seconds(20)));
  EXPECT_EQ(spec.kind(), EventSpecKind::kDelayedStronglyRetroactivelyBounded);
  EXPECT_EQ(spec.band().lower()->offset, -Duration::Seconds(20));
  EXPECT_EQ(spec.band().upper()->offset, -Duration::Seconds(10));
}

class ReplicatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Source: a degenerate feed (vt == tt).
    RelationOptions src_options;
    src_options.schema = FeedSchema("feed");
    src_clock_ = std::make_shared<LogicalClock>(T(1000), Duration::Seconds(5));
    src_options.clock = src_clock_;
    src_options.specializations.AddEvent(EventSpecialization::Degenerate());
    source_ = TemporalRelation::Open(std::move(src_options)).ValueOrDie();

    // Target: declared with the *propagated* specialization.
    RelationOptions dst_options;
    dst_options.schema = FeedSchema("warehouse");
    dst_clock_ = std::make_shared<LogicalClock>(T(1000), Duration::Seconds(5));
    dst_options.clock = dst_clock_;
    dst_options.specializations.AddEvent(
        PropagatedSpec(EventSpecialization::Degenerate(), Duration::Seconds(10),
                       Duration::Seconds(30))
            .ValueOrDie());
    target_ = TemporalRelation::Open(std::move(dst_options)).ValueOrDie();
  }

  std::shared_ptr<LogicalClock> src_clock_, dst_clock_;
  std::unique_ptr<TemporalRelation> source_, target_;
};

TEST_F(ReplicatorTest, ReplicaSatisfiesPropagatedSpec) {
  for (int i = 0; i < 200; ++i) {
    const TimePoint now = src_clock_->Peek();
    ASSERT_OK(source_->InsertEvent(i % 4, now, Tuple{int64_t{i % 4}, 1.0 * i})
                  .status());
  }
  Replicator replicator(source_.get(), target_.get(), dst_clock_.get(),
                        Duration::Seconds(10), Duration::Seconds(30));
  ASSERT_OK(replicator.Sync());
  EXPECT_EQ(replicator.replicated(), 200u);
  EXPECT_EQ(target_->size(), 200u);
  // The target's own constraint engine accepted everything, and a batch
  // re-check passes: the propagated declaration is sound.
  EXPECT_OK(target_->CheckExtension());

  // Inference on the replica recovers the propagated band.
  const RelationProfile profile =
      InferProfile(target_->elements(), ValidTimeKind::kEvent,
                   target_->schema().valid_granularity());
  EXPECT_GE(profile.event.min_offset_us, -30 * kMicrosPerSecond);
  EXPECT_LE(profile.event.max_offset_us, -10 * kMicrosPerSecond);
}

TEST_F(ReplicatorTest, DeletesPropagateWithCausality) {
  std::vector<ElementSurrogate> ids;
  for (int i = 0; i < 20; ++i) {
    const TimePoint now = src_clock_->Peek();
    ASSERT_OK_AND_ASSIGN(
        ElementSurrogate id,
        source_->InsertEvent(1, now, Tuple{int64_t{1}, 1.0 * i}));
    ids.push_back(id);
  }
  // Delete a few shortly after insert — the 10..30s replication delays could
  // reorder insert/delete without the causality guard.
  ASSERT_OK(source_->LogicalDelete(ids[3]));
  ASSERT_OK(source_->LogicalDelete(ids[7]));

  Replicator replicator(source_.get(), target_.get(), dst_clock_.get(),
                        Duration::Seconds(10), Duration::Seconds(30));
  ASSERT_OK(replicator.Sync());
  EXPECT_EQ(target_->CurrentState().size(), 18u);
  ASSERT_OK_AND_ASSIGN(ElementSurrogate t3, replicator.TargetOf(ids[3]));
  ASSERT_OK_AND_ASSIGN(Element dead, target_->GetElement(t3));
  EXPECT_FALSE(dead.IsCurrent());
  EXPECT_GT(dead.tt_end, dead.tt_begin);
}

TEST_F(ReplicatorTest, IncrementalSync) {
  ASSERT_OK(source_->InsertEvent(1, src_clock_->Peek(), Tuple{int64_t{1}, 1.0})
                .status());
  Replicator replicator(source_.get(), target_.get(), dst_clock_.get(),
                        Duration::Seconds(10), Duration::Seconds(30));
  ASSERT_OK(replicator.Sync());
  EXPECT_EQ(target_->size(), 1u);
  ASSERT_OK(source_->InsertEvent(2, src_clock_->Peek(), Tuple{int64_t{2}, 2.0})
                .status());
  ASSERT_OK(replicator.Sync());
  EXPECT_EQ(target_->size(), 2u);
  EXPECT_TRUE(replicator.TargetOf(999).status().IsNotFound());
}

}  // namespace
}  // namespace tempspec
