// Single-threaded readiness event loop: the scheduling heart of the network
// plane. One loop thread owns every registered fd and all connection state;
// other threads talk to it only through RunInLoop(), which enqueues a task
// and wakes the loop via a self-pipe. This is the classic
// one-loop-per-thread shape (memcached, muduo, redis): no per-connection
// locks anywhere, because no connection is ever touched off-loop.
//
// Backend: epoll on Linux, poll(2) elsewhere — both level-triggered behind
// the same Register/SetInterest interface, so server.cc is backend-blind.
// Timers are a min-heap consulted for the wait timeout; callbacks run on the
// loop thread between readiness batches.
#ifndef TEMPSPEC_NET_EVENT_LOOP_H_
#define TEMPSPEC_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "util/result.h"

namespace tempspec {

/// \brief Readiness bits delivered to fd callbacks (a callback may receive
/// several OR-ed together).
enum : uint32_t {
  kEventReadable = 1u << 0,
  kEventWritable = 1u << 1,
  /// Error or hangup: the fd should be torn down. Delivered even when not
  /// requested, like EPOLLERR/EPOLLHUP.
  kEventError = 1u << 2,
};

class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Creates the backend (epoll instance / poll tables) and the
  /// wakeup pipe. Must be called before Run().
  Status Init();

  /// \brief Registers `fd` with an interest mask (kEventReadable |
  /// kEventWritable). The callback runs on the loop thread. Loop thread
  /// only (call before Run(), or from a task/callback).
  Status Register(int fd, uint32_t interest, FdCallback callback);

  /// \brief Changes the interest mask of a registered fd. Loop thread only.
  Status SetInterest(int fd, uint32_t interest);

  /// \brief Removes `fd` from the loop (does not close it). Safe to call
  /// from inside the fd's own callback. Loop thread only.
  void Deregister(int fd);

  /// \brief Enqueues a task for the loop thread and wakes it. Thread-safe;
  /// the only cross-thread entry point. Tasks enqueued from the loop thread
  /// itself still defer to the next iteration (no reentrancy surprises).
  void RunInLoop(Task task);

  /// \brief Schedules `callback` to run on the loop thread after `delay`.
  /// Returns a timer id for CancelTimer. Loop thread only.
  uint64_t AddTimer(std::chrono::milliseconds delay, Task callback);

  /// \brief Cancels a pending timer (no-op when already fired). Loop thread
  /// only.
  void CancelTimer(uint64_t id);

  /// \brief Runs the loop on the calling thread until Stop().
  void Run();

  /// \brief Asks the loop to exit; thread-safe, returns immediately.
  void Stop();

  /// \brief True when called from the thread currently inside Run().
  bool InLoopThread() const {
    return loop_thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;
    uint64_t id;
    bool operator>(const Timer& other) const {
      return when > other.when || (when == other.when && id > other.id);
    }
  };

  void Wake();
  void DrainWakePipe();
  void RunPendingTasks();
  void RunDueTimers();
  /// \brief Milliseconds until the next timer fires, clamped to [0, cap].
  int WaitTimeoutMs(int cap) const;
  Status BackendAdd(int fd, uint32_t interest);
  Status BackendModify(int fd, uint32_t interest);
  void BackendRemove(int fd);
  /// \brief One backend wait + dispatch pass.
  void PollOnce(int timeout_ms);

  OwnedFd backend_fd_;  // epoll instance (unused by the poll backend)
  OwnedFd wake_read_;
  OwnedFd wake_write_;
  std::unordered_map<int, FdCallback> callbacks_;
  std::unordered_map<int, uint32_t> interests_;  // poll backend rebuilds from this

  std::mutex tasks_mu_;
  std::vector<Task> tasks_;  // guarded by tasks_mu_

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::unordered_map<uint64_t, Task> timer_callbacks_;
  uint64_t next_timer_id_ = 1;

  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_id_{};
};

}  // namespace tempspec

#endif  // TEMPSPEC_NET_EVENT_LOOP_H_
