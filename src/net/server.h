// NetServer: the engine's network front door.
//
// One event-loop thread (net/event_loop.h) owns the listener and every
// connection; a small worker pool executes query statements so a long scan
// never stalls the loop. The server speaks two protocols on one port,
// distinguished by the first bytes of the connection: anything starting
// with the TSP1 magic is the binary frame protocol (net/frame.h), anything
// else is HTTP/1.x (net/http.h). The telemetry endpoints (/metrics, /varz,
// /healthz, /debug/*) and the query endpoint (POST /query) are both plain
// HTTP handlers registered on the same server, so the exporter and the
// daemon share a single network stack.
//
// Operational policies, all tunable via ServerOptions:
//
//   Admission control — at most `max_inflight` statements execute or queue
//   at once, process-wide. Excess requests are refused *before* execution
//   (HTTP 503 / kRejected frame) rather than queued without bound: under
//   overload the server sheds load in O(1) and stays responsive to
//   telemetry scrapes, which never pass through admission.
//
//   Deadlines — a statement may carry a deadline (X-Tempspec-Deadline-Ms
//   header / frame deadline prefix), clamped to `max_deadline_ms` and
//   defaulted from `default_deadline_ms`. The deadline is armed on the
//   query's TraceContext at admission, so queue wait counts against it; the
//   executor polls it at morsel boundaries and the statement completes with
//   Deadline exceeded (HTTP 504) instead of running to completion. A client
//   that disconnects mid-query cancels it the same way.
//
//   Backpressure — each connection buffers writes; when a connection's
//   buffer exceeds `write_high_watermark` the server stops reading from it
//   until the buffer drains below half. A slow reader therefore throttles
//   itself, not the process. One statement runs per connection at a time
//   (pipelined requests stay buffered), so per-connection memory is bounded
//   by the limits plus one response.
#ifndef TEMPSPEC_NET_SERVER_H_
#define TEMPSPEC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/http.h"
#include "obs/trace.h"
#include "util/result.h"

namespace tempspec {

/// \brief Fixed-size pool of statement-execution threads: a plain
/// mutex+condvar task queue, deliberately separate from util/thread_pool.h
/// (whose ParallelFor shape fits data-parallel scans, not long-lived
/// request execution — one statement may itself fan out onto that pool).
class WorkerPool {
 public:
  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// \brief Enqueues a task; runs on some worker thread. No-op after
  /// Shutdown.
  void Submit(std::function<void()> task);

  /// \brief Drains the queue, waits for running tasks, joins the threads.
  /// Idempotent.
  void Shutdown();

 private:
  void Work();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 picks an ephemeral port; read back via port()
  int backlog = 64;
  /// Open-connection cap; further accepts are closed immediately.
  size_t max_connections = 256;
  /// Statements executing or queued process-wide; excess is rejected.
  size_t max_inflight = 8;
  size_t worker_threads = 2;
  HttpLimits http_limits;
  size_t max_frame_payload_bytes = 1 * 1024 * 1024;
  /// Applied when a request carries no deadline; 0 = unlimited.
  uint64_t default_deadline_ms = 0;
  /// Upper clamp for client-supplied deadlines; 0 = no clamp.
  uint64_t max_deadline_ms = 60 * 1000;
  /// Pause reading from a connection whose write buffer exceeds this;
  /// resume below half.
  size_t write_high_watermark = 4 * 1024 * 1024;
  /// Close connections idle this long with nothing in flight; 0 disables.
  uint64_t idle_timeout_ms = 60 * 1000;
};

/// \brief Monotonic counters snapshot (tests and /varz).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t requests = 0;             // statements admitted
  uint64_t requests_rejected = 0;    // admission control refusals
  uint64_t deadline_exceeded = 0;
  uint64_t protocol_errors = 0;      // malformed HTTP/frames
  uint64_t open_connections = 0;     // gauge
  uint64_t inflight = 0;             // gauge
};

class NetServer {
 public:
  struct HttpResponse {
    int code = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// \brief Synchronous endpoint handler, run on the event-loop thread:
  /// must be fast and non-blocking (telemetry snapshots, health checks).
  using HttpHandler = std::function<void(const HttpRequest&, HttpResponse*)>;

  /// \brief Statement executor, run on a worker thread. `trace` carries the
  /// armed deadline/cancellation and is valid for the duration of the call.
  using StatementHandler =
      std::function<Result<std::string>(const std::string& statement,
                                        TraceContext* trace)>;

  explicit NetServer(ServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// \brief Registers a GET endpoint by exact target ("/metrics"). Call
  /// before Start().
  void AddHttpHandler(std::string target, HttpHandler handler);

  /// \brief Handler for GET targets with no exact match; the response code
  /// defaults to 404 (endpoint-discovery bodies). Call before Start().
  void SetHttpFallback(HttpHandler handler);

  /// \brief Installs the executor behind POST /query and kQuery frames.
  /// Call before Start(). Without one, query requests answer 404 /
  /// kError.
  void SetStatementHandler(StatementHandler handler);

  /// \brief Binds, starts the workers and the loop thread. Fails on
  /// bind/listen errors and double Start.
  Status Start();

  /// \brief Cancels in-flight statements, drains the workers, stops the
  /// loop, closes every connection. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return bound_port_.load(std::memory_order_acquire); }
  const ServerOptions& options() const { return options_; }

  ServerStats Stats() const;

 private:
  struct Connection;

  /// \brief Client-supplied wire trace identity for one statement
  /// (X-Tempspec-Trace header / TSP1 trace prefix); `set` false when the
  /// request carried none (or carried a malformed header, which is treated
  /// the same — tracing must never fail a request).
  struct WireTraceInfo {
    uint64_t hi = 0;
    uint64_t lo = 0;
    uint64_t span = 0;
    bool set = false;
  };

  void OnAccept();
  void OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                         uint32_t events);
  /// \brief Parses buffered input and dispatches at most one statement
  /// (per-connection serialization); re-entered after each completion.
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  void ProcessHttp(const std::shared_ptr<Connection>& conn);
  void ProcessFrames(const std::shared_ptr<Connection>& conn);
  void RouteHttpRequest(const std::shared_ptr<Connection>& conn);
  /// \brief Admission + worker dispatch for one statement. `deadline_ms` 0
  /// means "none supplied" (the default applies).
  void DispatchStatement(const std::shared_ptr<Connection>& conn,
                         std::string statement, uint64_t deadline_ms,
                         const WireTraceInfo& wire, bool is_http,
                         bool http_keep_alive);
  /// \brief Response write + request-span finalization: ends the
  /// server-owned span and records it into the slowlog/retained ring (the
  /// statement text rides along for the slowlog entry).
  void CompleteStatement(const std::shared_ptr<Connection>& conn,
                         const std::shared_ptr<TraceContext>& trace,
                         const std::string& statement, const Status& status,
                         const std::string& payload, bool is_http,
                         bool http_keep_alive);
  void SendHttpResponse(const std::shared_ptr<Connection>& conn, int code,
                        std::string_view content_type, std::string_view body,
                        bool keep_alive);
  void SendFrame(const std::shared_ptr<Connection>& conn, const Frame& frame);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  /// \brief Recomputes the read/write interest mask from buffer state
  /// (backpressure lives here).
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void SweepIdleConnections();

  ServerOptions options_;
  EventLoop loop_;
  std::unique_ptr<WorkerPool> workers_;
  OwnedFd listen_fd_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> bound_port_{0};

  std::map<std::string, HttpHandler> http_handlers_;
  HttpHandler http_fallback_;
  StatementHandler statement_handler_;

  // Loop-thread state.
  std::map<int, std::shared_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  size_t inflight_ = 0;

  // Monotonic counters; written by the loop thread, read anywhere.
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> refused_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> inflight_published_{0};
};

}  // namespace tempspec

#endif  // TEMPSPEC_NET_SERVER_H_
