#include "spec/specialization.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::MakeEventElement;
using testing::MakeIntervalElement;
using testing::T;

const Granularity kSec = Granularity::Second();

SchemaPtr EventSchema() {
  return Schema::Make("r",
                      {AttributeDef{"id", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey}},
                      ValidTimeKind::kEvent, kSec)
      .ValueOrDie();
}

SchemaPtr IntervalSchema() {
  return Schema::Make("r",
                      {AttributeDef{"id", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey}},
                      ValidTimeKind::kInterval, kSec)
      .ValueOrDie();
}

TEST(SpecializationSetTest, ValidateRejectsKindMismatch) {
  SpecializationSet event_specs;
  event_specs.AddEvent(EventSpecialization::Retroactive());
  EXPECT_OK(event_specs.ValidateFor(*EventSchema()));
  EXPECT_NOT_OK(event_specs.ValidateFor(*IntervalSchema()));

  SpecializationSet interval_specs;
  interval_specs.AddSuccessive(SuccessiveSpec::Contiguous());
  EXPECT_OK(interval_specs.ValidateFor(*IntervalSchema()));
  EXPECT_NOT_OK(interval_specs.ValidateFor(*EventSchema()));
}

TEST(SpecializationSetTest, ValidateRejectsContradictoryBands) {
  // Retroactive (vt <= tt) AND early predictive (vt >= tt + 3d): empty band.
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive());
  specs.AddEvent(
      EventSpecialization::EarlyPredictive(Duration::Days(3)).ValueOrDie());
  const Status st = specs.ValidateFor(*EventSchema());
  ASSERT_NOT_OK(st);
  EXPECT_NE(st.message().find("contradictory"), std::string::npos);
}

TEST(SpecializationSetTest, CompatibleBandsAccepted) {
  // Delayed retroactive(30s) + retroactively bounded(120s): band [-120s,-30s].
  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
  specs.AddEvent(
      EventSpecialization::RetroactivelyBounded(Duration::Seconds(120)).ValueOrDie());
  EXPECT_OK(specs.ValidateFor(*EventSchema()));
}

TEST(SpecializationSetTest, ToStringListsEverything) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive());
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  const std::string s = specs.ToString();
  EXPECT_NE(s.find("retroactive"), std::string::npos);
  EXPECT_NE(s.find("non-decreasing"), std::string::npos);
  EXPECT_EQ(SpecializationSet().ToString().find("general"), 3u);
}

TEST(ConstraintCheckerTest, EnforcesIsolatedEventSpecs) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive());
  ConstraintChecker checker(specs, kSec);
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(100), T(50), 1)));
  EXPECT_NOT_OK(checker.OnInsert(MakeEventElement(T(200), T(300), 2)));
  // The rejection left no state behind; a correct retry works.
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(200), T(150), 2)));
}

TEST(ConstraintCheckerTest, EnforcesOrderingsAtomically) {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  ASSERT_OK_AND_ASSIGN(auto reg,
                       RegularitySpec::Make(RegularityDimension::kValidTime,
                                            Duration::Seconds(10)));
  specs.AddRegularity(reg);
  ConstraintChecker checker(specs, kSec);
  ASSERT_OK(checker.OnInsert(MakeEventElement(T(1), T(100), 1)));
  // Passes ordering (110 >= 100) but fails regularity (not a 10s multiple):
  // the ordering checker must not have committed 115.
  EXPECT_NOT_OK(checker.OnInsert(MakeEventElement(T(2), T(115), 2)));
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(2), T(110), 2)));
}

TEST(ConstraintCheckerTest, DeletionAnchoredSpecCheckedAtDelete) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive().WithAnchor(
      TransactionAnchor::kDeletion));
  ConstraintChecker checker(specs, kSec);
  // Insertion unconstrained, even with a future valid time.
  Element e = MakeEventElement(T(100), T(500), 1);
  ASSERT_OK(checker.OnInsert(e));
  // Deleting before the fact became valid violates deletion-retroactivity.
  e.tt_end = T(300);
  EXPECT_NOT_OK(checker.OnLogicalDelete(e));
  e.tt_end = T(600);
  EXPECT_OK(checker.OnLogicalDelete(e));
}

TEST(ConstraintCheckerTest, IntervalSpecsEnforced) {
  SpecializationSet specs;
  specs.AddSuccessive(SuccessiveSpec::Contiguous());
  ASSERT_OK_AND_ASSIGN(auto weekly,
                       IntervalRegularitySpec::Make(
                           IntervalRegularityDimension::kValidTime,
                           Duration::Seconds(10), /*strict=*/true));
  specs.AddIntervalRegularity(weekly);
  ConstraintChecker checker(specs, kSec);
  ASSERT_OK(checker.OnInsert(MakeIntervalElement(T(1), T(0), T(10), 1)));
  ASSERT_OK(checker.OnInsert(MakeIntervalElement(T(2), T(10), T(20), 2)));
  // Wrong length.
  EXPECT_NOT_OK(checker.OnInsert(MakeIntervalElement(T(3), T(20), T(35), 3)));
  // Right length but not contiguous.
  EXPECT_NOT_OK(checker.OnInsert(MakeIntervalElement(T(3), T(25), T(35), 3)));
  EXPECT_OK(checker.OnInsert(MakeIntervalElement(T(3), T(20), T(30), 3)));
}

TEST(ConstraintCheckerTest, TransactionTimeIntervalRegularityAtDelete) {
  SpecializationSet specs;
  ASSERT_OK_AND_ASSIGN(auto tt_reg,
                       IntervalRegularitySpec::Make(
                           IntervalRegularityDimension::kTransactionTime,
                           Duration::Seconds(100)));
  specs.AddIntervalRegularity(tt_reg);
  ConstraintChecker checker(specs, kSec);
  Element e = MakeIntervalElement(T(0), T(0), T(10), 1);
  ASSERT_OK(checker.OnInsert(e));
  e.tt_end = T(150);  // existence of 150s: not a multiple of 100s
  EXPECT_NOT_OK(checker.OnLogicalDelete(e));
  e.tt_end = T(200);
  EXPECT_OK(checker.OnLogicalDelete(e));
}

TEST(ConstraintCheckerTest, CheckExtensionBatch) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive());
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  ConstraintChecker checker(specs, kSec);
  std::vector<Element> good = {
      MakeEventElement(T(10), T(5), 1),
      MakeEventElement(T(20), T(8), 2),
  };
  EXPECT_OK(checker.CheckExtension(good));
  std::vector<Element> bad_order = {
      MakeEventElement(T(10), T(8), 1),
      MakeEventElement(T(20), T(5), 2),
  };
  EXPECT_NOT_OK(checker.CheckExtension(bad_order));
  std::vector<Element> bad_band = {MakeEventElement(T(10), T(50), 1)};
  EXPECT_NOT_OK(checker.CheckExtension(bad_band));
}

TEST(ConstraintCheckerTest, PerSurrogateScopeTracksPartitions) {
  SpecializationSet specs;
  specs.AddOrdering(
      OrderingSpec(OrderingKind::kSequential, SpecScope::kPerObjectSurrogate));
  ConstraintChecker checker(specs, kSec);
  // Interleaved objects, each sequential on its own.
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(10), T(11), 1, 1)));
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(12), T(13), 2, 2)));
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(20), T(21), 3, 1)));
  // Object 1's new stamp precedes its previous max: rejected.
  EXPECT_NOT_OK(checker.OnInsert(MakeEventElement(T(22), T(15), 4, 1)));
  // But the same stamp on object 2 is fine.
  EXPECT_OK(checker.OnInsert(MakeEventElement(T(22), T(23), 4, 2)));
}

}  // namespace
}  // namespace tempspec
