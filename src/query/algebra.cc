#include "query/algebra.h"

#include <algorithm>
#include <map>

namespace tempspec {

Result<std::vector<Element>> Coalesce(std::vector<Element> elements) {
  for (const Element& e : elements) {
    if (!e.valid.is_interval()) {
      return Status::InvalidArgument(
          "coalescing is defined on interval-stamped elements");
    }
  }
  // Group current elements by (object, attribute values); pass everything
  // else through untouched.
  std::vector<Element> out;
  std::map<std::pair<ObjectSurrogate, std::string>, std::vector<Element>> groups;
  for (Element& e : elements) {
    if (!e.IsCurrent()) {
      out.push_back(std::move(e));
      continue;
    }
    groups[{e.object_surrogate, e.attributes.ToString()}].push_back(std::move(e));
  }
  for (auto& [key, group] : groups) {
    std::sort(group.begin(), group.end(), [](const Element& a, const Element& b) {
      return a.valid.begin() < b.valid.begin();
    });
    Element current = group.front();
    for (size_t i = 1; i < group.size(); ++i) {
      Element& next = group[i];
      if (next.valid.begin() <= current.valid.end()) {
        // Overlaps or meets: extend. The merged element keeps the earliest
        // insertion stamp (it has been true since then) and the earliest
        // surrogate for determinism.
        const TimePoint end = std::max(current.valid.end(), next.valid.end());
        current.valid = ValidTime::IntervalUnchecked(current.valid.begin(), end);
        current.tt_begin = std::min(current.tt_begin, next.tt_begin);
        current.element_surrogate =
            std::min(current.element_surrogate, next.element_surrogate);
      } else {
        out.push_back(current);
        current = next;
      }
    }
    out.push_back(current);
  }
  std::sort(out.begin(), out.end(), [](const Element& a, const Element& b) {
    return a.element_surrogate < b.element_surrogate;
  });
  return out;
}

std::vector<JoinedFact> TemporalJoin(std::span<const Element> left,
                                     std::span<const Element> right) {
  // Hash the smaller side by object surrogate.
  std::map<ObjectSurrogate, std::vector<const Element*>> by_object;
  for (const Element& r : right) {
    if (r.IsCurrent()) by_object[r.object_surrogate].push_back(&r);
  }
  std::vector<JoinedFact> out;
  for (const Element& l : left) {
    if (!l.IsCurrent()) continue;
    auto it = by_object.find(l.object_surrogate);
    if (it == by_object.end()) continue;
    for (const Element* r : it->second) {
      if (l.valid.is_event() && r->valid.is_event()) {
        if (l.valid.at() == r->valid.at()) {
          out.push_back(JoinedFact{l.object_surrogate, l.valid, l.attributes,
                                   r->attributes});
        }
        continue;
      }
      const TimeInterval li = l.valid.AsInterval();
      const TimeInterval ri = r->valid.AsInterval();
      // Event-vs-interval: the event instant must fall inside the interval.
      if (l.valid.is_event()) {
        if (ri.Contains(l.valid.at())) {
          out.push_back(JoinedFact{l.object_surrogate, l.valid, l.attributes,
                                   r->attributes});
        }
        continue;
      }
      if (r->valid.is_event()) {
        if (li.Contains(r->valid.at())) {
          out.push_back(JoinedFact{l.object_surrogate, r->valid, l.attributes,
                                   r->attributes});
        }
        continue;
      }
      const TimeInterval both = li.Intersect(ri);
      if (!both.IsEmpty()) {
        out.push_back(JoinedFact{
            l.object_surrogate,
            ValidTime::IntervalUnchecked(both.begin(), both.end()), l.attributes,
            r->attributes});
      }
    }
  }
  return out;
}

std::vector<Element> Restrict(std::span<const Element> elements,
                              const std::function<bool(const Tuple&)>& predicate) {
  std::vector<Element> out;
  for (const Element& e : elements) {
    if (predicate(e.attributes)) out.push_back(e);
  }
  return out;
}

Result<std::vector<Element>> Project(std::span<const Element> elements,
                                     const std::vector<size_t>& positions) {
  std::vector<Element> out;
  out.reserve(elements.size());
  for (const Element& e : elements) {
    std::vector<Value> values;
    values.reserve(positions.size());
    for (size_t pos : positions) {
      if (pos >= e.attributes.size()) {
        return Status::OutOfRange("projection position ", pos,
                                  " exceeds tuple width ", e.attributes.size());
      }
      values.push_back(e.attributes.at(pos));
    }
    Element projected = e;
    projected.attributes = Tuple(std::move(values));
    out.push_back(std::move(projected));
  }
  return out;
}

Result<double> ValidCoverage(std::span<const Element> elements, TimePoint lo,
                             TimePoint hi) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("coverage window must be non-empty");
  }
  std::vector<TimeInterval> intervals;
  for (const Element& e : elements) {
    if (!e.IsCurrent()) continue;
    if (!e.valid.is_interval()) {
      return Status::InvalidArgument(
          "coverage is defined on interval-stamped elements");
    }
    const TimeInterval clipped = e.valid.AsInterval().Intersect({lo, hi});
    if (!clipped.IsEmpty()) intervals.push_back(clipped);
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin() < b.begin();
            });
  int64_t covered = 0;
  TimePoint cursor = lo;
  for (const TimeInterval& iv : intervals) {
    const TimePoint start = std::max(cursor, iv.begin());
    if (iv.end() > start) {
      covered += iv.end().MicrosSince(start);
      cursor = iv.end();
    }
  }
  return static_cast<double>(covered) / static_cast<double>(hi.MicrosSince(lo));
}

}  // namespace tempspec
