#include "query/lifeline.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::T;

std::unique_ptr<TemporalRelation> IntervalRelation(
    std::shared_ptr<LogicalClock>* clock) {
  RelationOptions options;
  options.schema =
      Schema::Make("titles",
                   {AttributeDef{"employee", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"title", ValueType::kString,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kInterval, Granularity::Day())
          .ValueOrDie();
  *clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.clock = *clock;
  return TemporalRelation::Open(std::move(options)).ValueOrDie();
}

TEST(LifelineTest, AttributeHistoryMergesEqualAdjacentValues) {
  std::shared_ptr<LogicalClock> clock;
  auto rel = IntervalRelation(&clock);
  ASSERT_OK(rel->InsertInterval(7, T(0), T(100), Tuple{int64_t{7}, "engineer"})
                .status());
  ASSERT_OK(rel->InsertInterval(7, T(100), T(200), Tuple{int64_t{7}, "engineer"})
                .status());
  ASSERT_OK(rel->InsertInterval(7, T(200), T(300), Tuple{int64_t{7}, "manager"})
                .status());
  ASSERT_OK(rel->InsertInterval(8, T(0), T(50), Tuple{int64_t{8}, "intern"})
                .status());

  ASSERT_OK_AND_ASSIGN(auto history, AttributeHistory(*rel, 7, "title"));
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].value.AsString(), "engineer");
  EXPECT_EQ(history[0].valid.begin(), T(0));
  EXPECT_EQ(history[0].valid.end(), T(200));  // merged across the meet
  EXPECT_EQ(history[1].value.AsString(), "manager");
}

TEST(LifelineTest, CorrectedFactsUseCurrentBelief) {
  std::shared_ptr<LogicalClock> clock;
  auto rel = IntervalRelation(&clock);
  ASSERT_OK_AND_ASSIGN(
      ElementSurrogate wrong,
      rel->InsertInterval(7, T(0), T(100), Tuple{int64_t{7}, "typo"}));
  ASSERT_OK(rel->Modify(wrong,
                        ValidTime::IntervalUnchecked(T(0), T(100)),
                        Tuple{int64_t{7}, "engineer"})
                .status());
  ASSERT_OK_AND_ASSIGN(auto history, AttributeHistory(*rel, 7, "title"));
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].value.AsString(), "engineer");
}

TEST(LifelineTest, AttributeAtLookups) {
  std::shared_ptr<LogicalClock> clock;
  auto rel = IntervalRelation(&clock);
  ASSERT_OK(rel->InsertInterval(7, T(0), T(100), Tuple{int64_t{7}, "engineer"})
                .status());
  ASSERT_OK(rel->InsertInterval(7, T(200), T(300), Tuple{int64_t{7}, "manager"})
                .status());
  ASSERT_OK_AND_ASSIGN(Value v, AttributeAt(*rel, 7, "title", T(50)));
  EXPECT_EQ(v.AsString(), "engineer");
  // Gap in the lifeline.
  EXPECT_TRUE(AttributeAt(*rel, 7, "title", T(150)).status().IsNotFound());
  EXPECT_TRUE(AttributeAt(*rel, 99, "title", T(50)).status().IsNotFound());
  EXPECT_FALSE(AttributeAt(*rel, 7, "salary", T(50)).ok());
}

TEST(LifelineTest, EventRelationHistory) {
  RelationOptions options;
  options.schema =
      Schema::Make("readings",
                   {AttributeDef{"sensor", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"value", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  options.clock = std::make_shared<LogicalClock>(T(1000), Duration::Seconds(1));
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  ASSERT_OK(rel->InsertEvent(1, T(20), Tuple{int64_t{1}, 2.0}).status());
  ASSERT_OK(rel->InsertEvent(1, T(10), Tuple{int64_t{1}, 1.0}).status());
  ASSERT_OK_AND_ASSIGN(auto history, AttributeHistory(*rel, 1, "value"));
  ASSERT_EQ(history.size(), 2u);
  // Sorted by valid time, not insertion order.
  EXPECT_DOUBLE_EQ(history[0].value.AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(history[1].value.AsDouble(), 2.0);
}

TEST(GranularityPolicyTest, RejectAndTruncate) {
  auto make = [](GranularityPolicy policy) {
    RelationOptions options;
    options.schema =
        Schema::Make("hourly",
                     {AttributeDef{"id", ValueType::kInt64,
                                   AttributeRole::kTimeInvariantKey}},
                     ValidTimeKind::kEvent, Granularity::Hour())
            .ValueOrDie();
    options.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
    options.granularity_policy = policy;
    return TemporalRelation::Open(std::move(options)).ValueOrDie();
  };

  auto reject = make(GranularityPolicy::kReject);
  EXPECT_OK(reject->InsertEvent(1, T(7200), Tuple{int64_t{1}}).status());
  EXPECT_FALSE(reject->InsertEvent(1, T(7260), Tuple{int64_t{1}}).ok());

  auto truncate = make(GranularityPolicy::kTruncate);
  ASSERT_OK_AND_ASSIGN(ElementSurrogate id,
                       truncate->InsertEvent(1, T(7260), Tuple{int64_t{1}}));
  ASSERT_OK_AND_ASSIGN(Element e, truncate->GetElement(id));
  EXPECT_EQ(e.valid.at(), T(7200));  // snapped to the hour

  auto ignore = make(GranularityPolicy::kIgnore);
  ASSERT_OK_AND_ASSIGN(ElementSurrogate raw,
                       ignore->InsertEvent(1, T(7260), Tuple{int64_t{1}}));
  EXPECT_EQ(ignore->GetElement(raw)->valid.at(), T(7260));
}

}  // namespace
}  // namespace tempspec
