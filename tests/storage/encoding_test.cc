#include "storage/encoding.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

TEST(VarintTest, RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16384ull,
                     0xFFFFFFFFull, ~0ull}) {
    std::string buf;
    PutVarint(v, &buf);
    std::string_view view = buf;
    EXPECT_EQ(GetVarint(&view).ValueOrDie(), v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(VarintTest, TruncatedDetected) {
  std::string buf;
  PutVarint(1u << 20, &buf);
  std::string_view view(buf.data(), buf.size() - 1);
  EXPECT_TRUE(GetVarint(&view).status().IsCorruption());
}

TEST(ZigZagTest, RoundTrip) {
  for (int64_t v : {0ll, 1ll, -1ll, 63ll, -64ll, 1ll << 40, -(1ll << 40)}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes stay small.
  EXPECT_LT(ZigZagEncode(-3), 10u);
}

std::vector<TimePoint> RegularStamps(size_t n, int64_t unit_s) {
  std::vector<TimePoint> out;
  for (size_t i = 0; i < n; ++i) out.push_back(T(1000 + i * unit_s));
  return out;
}

TEST(TimestampEncodingTest, RawRoundTrip) {
  const auto stamps = RegularStamps(100, 7);
  const std::string data = EncodeTimestampsRaw(stamps);
  EXPECT_EQ(data.size(), 4 + 100 * 8);
  ASSERT_OK_AND_ASSIGN(auto back, DecodeTimestampsRaw(data));
  EXPECT_EQ(back, stamps);
}

TEST(TimestampEncodingTest, DeltaRoundTripAndSmaller) {
  const auto stamps = RegularStamps(1000, 10);
  const std::string raw = EncodeTimestampsRaw(stamps);
  const std::string delta = EncodeTimestampsDelta(stamps);
  ASSERT_OK_AND_ASSIGN(auto back, DecodeTimestampsDelta(delta));
  EXPECT_EQ(back, stamps);
  // 10-second deltas need 4 varint bytes each vs 8 raw bytes.
  EXPECT_LT(delta.size(), raw.size() * 5 / 8);
}

TEST(TimestampEncodingTest, DeltaHandlesUnsortedAndNegative) {
  std::vector<TimePoint> stamps = {T(100), T(-50), T(3000), T(2999), T(0)};
  ASSERT_OK_AND_ASSIGN(auto back, DecodeTimestampsDelta(EncodeTimestampsDelta(stamps)));
  EXPECT_EQ(back, stamps);
}

TEST(TimestampEncodingTest, UnitEncodingRoundTripAndTiny) {
  const auto stamps = RegularStamps(1000, 60);  // one-minute unit
  ASSERT_OK_AND_ASSIGN(std::string unit,
                       EncodeTimestampsUnit(stamps, 60 * kMicrosPerSecond));
  ASSERT_OK_AND_ASSIGN(auto back, DecodeTimestampsUnit(unit));
  EXPECT_EQ(back, stamps);
  // Strictly regular stamps cost ~1 byte each (k-delta = 1).
  EXPECT_LT(unit.size(), 4 + 8 + 8 + 1000 * 2);
  const std::string delta = EncodeTimestampsDelta(stamps);
  EXPECT_LT(unit.size(), delta.size());
}

TEST(TimestampEncodingTest, UnitEncodingRejectsIrregularStamps) {
  std::vector<TimePoint> stamps = {T(0), T(60), T(95)};
  auto result = EncodeTimestampsUnit(stamps, 60 * kMicrosPerSecond);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(TimestampEncodingTest, EmptyColumns) {
  ASSERT_OK_AND_ASSIGN(auto raw, DecodeTimestampsRaw(EncodeTimestampsRaw({})));
  EXPECT_TRUE(raw.empty());
  ASSERT_OK_AND_ASSIGN(auto delta, DecodeTimestampsDelta(EncodeTimestampsDelta({})));
  EXPECT_TRUE(delta.empty());
  ASSERT_OK_AND_ASSIGN(std::string unit, EncodeTimestampsUnit({}, 1000));
  ASSERT_OK_AND_ASSIGN(auto u, DecodeTimestampsUnit(unit));
  EXPECT_TRUE(u.empty());
}

TEST(TimestampEncodingTest, RandomizedNonStrictRegular) {
  Random rng(19);
  // Congruent but unevenly spaced (non-strict regularity).
  std::vector<TimePoint> stamps;
  int64_t k = 0;
  for (int i = 0; i < 500; ++i) {
    k += rng.Uniform(0, 20);
    stamps.push_back(T(500) + Duration::Seconds(k * 30));
  }
  ASSERT_OK_AND_ASSIGN(std::string unit,
                       EncodeTimestampsUnit(stamps, 30 * kMicrosPerSecond));
  ASSERT_OK_AND_ASSIGN(auto back, DecodeTimestampsUnit(unit));
  EXPECT_EQ(back, stamps);
  EXPECT_LT(unit.size(), EncodeTimestampsRaw(stamps).size());
}

}  // namespace
}  // namespace tempspec
