// Minimal HTTP/1.0-1.1 machinery for the server plane: an incremental,
// hard-bounded request parser plus a response builder. The parser is
// deliberately strict and small — it accepts the subset the exporter and
// query endpoints need (GET/POST, Content-Length bodies) and rejects
// everything else with the right 4xx/5xx code instead of guessing. Every
// buffer it grows is capped by HttpLimits, so a client that streams an
// unbounded request line or header block is cut off at the limit, not at
// OOM (the exporter's old inline reader had no such bounds).
#ifndef TEMPSPEC_NET_HTTP_H_
#define TEMPSPEC_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tempspec {

/// \brief Byte caps for a single request. A parse that would exceed one
/// enters the error state with the matching HTTP status (431 for the
/// request line / headers, 413 for the body).
struct HttpLimits {
  size_t max_request_line_bytes = 8 * 1024;
  size_t max_header_bytes = 16 * 1024;  // all header lines together
  size_t max_body_bytes = 1 * 1024 * 1024;
  size_t max_headers = 64;
};

/// \brief One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;   // path only; the query string is split off below
  std::string query;    // bytes after '?' (no decoding), "" when absent
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// \brief Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// \brief Incremental push parser: feed bytes as they arrive, in any
/// slicing (byte-at-a-time delivery parses identically to one big read).
class HttpParser {
 public:
  enum class State {
    kRequestLine,
    kHeaders,
    kBody,
    kComplete,
    kError,
  };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// \brief Consumes bytes; returns how many were consumed (always all of
  /// them until the request completes or errors — bytes after a complete
  /// request stay with the caller for pipelining).
  size_t Feed(const char* data, size_t len);

  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool error() const { return state_ == State::kError; }

  /// \brief On kError: the HTTP status code to answer with (400, 413, 431,
  /// or 505) and a short reason for the body.
  int error_code() const { return error_code_; }
  const std::string& error_reason() const { return error_reason_; }

  /// \brief The parsed request; meaningful once complete().
  const HttpRequest& request() const { return request_; }
  HttpRequest& request() { return request_; }

  /// \brief Resets to parse the next request on the same connection.
  void Reset();

 private:
  void Fail(int code, std::string reason);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  /// \brief Validates the header set and decides whether a body follows.
  void FinishHeaders();

  HttpLimits limits_;
  State state_ = State::kRequestLine;
  std::string line_buf_;      // current (partial) request/header line
  size_t header_bytes_ = 0;   // total header-line bytes so far
  size_t body_expected_ = 0;  // Content-Length once headers complete
  int error_code_ = 0;
  std::string error_reason_;
  HttpRequest request_;
};

/// \brief Standard reason phrase for the codes this server emits.
const char* HttpReasonPhrase(int code);

/// \brief Serializes a complete response with Content-Length and the given
/// connection disposition.
std::string BuildHttpResponse(int code, std::string_view content_type,
                              std::string_view body, bool keep_alive);

}  // namespace tempspec

#endif  // TEMPSPEC_NET_HTTP_H_
