#!/usr/bin/env bash
# Smoke check for the network query plane: start tempspec_serve on an
# ephemeral port with a fresh data dir, then drive the full surface live —
# DDL + INSERT + queries over HTTP, ping and a deadline-tagged query over
# the TSP1 binary frame protocol (via a small python client), a telemetry
# scrape, and a restart that must recover the inserted data through the WAL.
#
# Usage: tools/server_smoke.sh [build_dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/tempspec_serve"

if [ ! -x "$SERVE" ]; then
  echo "no tempspec_serve binary at $SERVE (build with the default CMake config first)" >&2
  exit 2
fi

OUT_DIR="$(mktemp -d)"
PORT_FILE="$OUT_DIR/port"
DATA_DIR="$OUT_DIR/data"
cleanup() {
  [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null
  rm -rf "$OUT_DIR"
}
trap cleanup EXIT

start_server() {
  rm -f "$PORT_FILE"
  "$SERVE" --port=0 --data-dir="$DATA_DIR" --portfile="$PORT_FILE" \
      > "$OUT_DIR/serve.out" 2>&1 &
  SERVE_PID=$!
  port=""
  for _ in $(seq 1 100); do
    if [ -s "$PORT_FILE" ]; then
      port="$(cat "$PORT_FILE")"
      break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "tempspec_serve exited before binding:" >&2
      cat "$OUT_DIR/serve.out" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "tempspec_serve never wrote its port file" >&2
    exit 1
  fi
}

failures=0
check() {  # check <label> <got> <want-substring>
  if printf '%s' "$2" | grep -q "$3"; then
    echo "$1: OK"
  else
    echo "$1: FAIL: wanted '$3', got '$2'"
    failures=$((failures + 1))
  fi
}

start_server

check "/healthz" "$(curl -sf "http://127.0.0.1:$port/healthz")" "^ok$"

post() { curl -s -X POST --data-binary "$1" "http://127.0.0.1:$port/query"; }

check "CREATE over HTTP" \
  "$(post "CREATE EVENT RELATION smoke_readings ( sensor INT64 KEY, celsius DOUBLE ) GRANULARITY 1s")" \
  "created relation smoke_readings"
check "INSERT over HTTP" \
  "$(post "INSERT INTO smoke_readings OBJECT 7 VALUES (7, 21.5) VALID AT '1992-02-03 10:30:00'")" \
  "inserted element 1"
check "CURRENT over HTTP" "$(post "CURRENT smoke_readings")" "1 element(s) *shown\|1 element(s)"
check "SHOW over HTTP" "$(post "SHOW SPECIALIZATION smoke_readings")" "declared"
check "bad statement is 4xx" \
  "$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary "BOGUS" \
      "http://127.0.0.1:$port/query")" "^400$"

# Telemetry rides the same port: the scrape must carry the server counters.
if ! curl -sf "http://127.0.0.1:$port/metrics" -o "$OUT_DIR/metrics.txt"; then
  echo "/metrics: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$(dirname "$0")/check_metrics_text.py" "$OUT_DIR/metrics.txt" \
    || failures=$((failures + 1))
  if ! grep -q "^server_requests " "$OUT_DIR/metrics.txt"; then
    echo "/metrics: FAIL: no server_requests sample in the scrape"
    failures=$((failures + 1))
  fi
fi

# The TSP1 binary frame protocol on the same port: ping/pong round-trip and
# a deadline-tagged query (header layout in net/frame.h).
if python3 - "$port" > "$OUT_DIR/frames.out" <<'EOF'
import socket, struct, sys, zlib

port = int(sys.argv[1])
MAGIC = 0x31505354

def frame(ftype, payload, deadline_ms=None):
    flags = 0
    if deadline_ms is not None:
        flags = 1
        payload = struct.pack('<Q', deadline_ms) + payload
    return struct.pack('<IBBHII', MAGIC, ftype, flags, 0, len(payload),
                       zlib.crc32(payload) & 0xffffffff) + payload

def read_frame(sock):
    hdr = b''
    while len(hdr) < 16:
        chunk = sock.recv(16 - len(hdr))
        if not chunk:
            raise EOFError('connection closed mid-header')
        hdr += chunk
    magic, ftype, flags, reserved, plen, crc = struct.unpack('<IBBHII', hdr)
    assert magic == MAGIC, hex(magic)
    payload = b''
    while len(payload) < plen:
        chunk = sock.recv(plen - len(payload))
        if not chunk:
            raise EOFError('connection closed mid-payload')
        payload += chunk
    assert zlib.crc32(payload) & 0xffffffff == crc, 'response CRC mismatch'
    return ftype, payload

s = socket.create_connection(('127.0.0.1', port))
s.sendall(frame(4, b'smoke'))                      # ping
ftype, payload = read_frame(s)
assert (ftype, payload) == (5, b'smoke'), (ftype, payload)
s.sendall(frame(1, b'CURRENT smoke_readings', deadline_ms=5000))
ftype, payload = read_frame(s)
assert ftype == 2, (ftype, payload)                # kResult
assert b'1 element(s)' in payload, payload
s.close()
print('binary ping + deadline query round-tripped')
EOF
then
  echo "binary protocol: OK"
else
  echo "binary protocol: FAIL"
  cat "$OUT_DIR/frames.out"
  failures=$((failures + 1))
fi

# Restart: SIGTERM, relaunch on the same data dir, the insert must survive.
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
start_server
check "recovery after restart" "$(post "CURRENT smoke_readings")" "1 element(s)"

kill "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null
SERVE_PID=""

if [ $failures -ne 0 ]; then
  echo "server smoke: $failures failure(s)"
  exit 1
fi
echo "server smoke: HTTP + binary protocols, telemetry, and WAL recovery all live"
