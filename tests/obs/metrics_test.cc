// Unit tests for the metrics registry: counter/gauge/histogram semantics,
// sharded concurrency, log2 bucketing and percentile estimates, scrape JSON,
// reset-in-place, and the compile-out contract (the TS_* macros register
// nothing in a TEMPSPEC_METRICS=OFF tree — asserted both ways, so the OFF
// build job proves zero overhead rather than vacuously passing).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "testing.h"
#include "testing_json.h"
#include "util/random.h"

namespace tempspec {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  MetricCounter c("test.counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(7);
  EXPECT_EQ(c.Value(), 7u);
}

TEST(MetricsTest, CounterSumsAcrossThreads) {
  MetricCounter c("test.threads");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricGauge g("test.gauge");
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(3);
  g.Set(-5);  // signed: paired Add(+1)/Add(-1) may transiently dip below zero
  EXPECT_EQ(g.Value(), -5);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(HistogramBucketFor(0), 0u);
  EXPECT_EQ(HistogramBucketFor(1), 1u);
  EXPECT_EQ(HistogramBucketFor(2), 2u);
  EXPECT_EQ(HistogramBucketFor(3), 2u);
  EXPECT_EQ(HistogramBucketFor(4), 3u);
  EXPECT_EQ(HistogramBucketFor(1023), 10u);
  EXPECT_EQ(HistogramBucketFor(1024), 11u);
  EXPECT_EQ(HistogramBucketFor(~uint64_t{0}), 64u);
  // Bucket b holds values in [2^(b-1), 2^b); its inclusive upper bound is
  // the largest member.
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(11), 2047u);
  for (uint64_t v : {uint64_t{1}, uint64_t{17}, uint64_t{4096},
                     uint64_t{999999}}) {
    EXPECT_LE(v, HistogramBucketUpperBound(HistogramBucketFor(v))) << v;
  }
}

TEST(MetricsTest, HistogramSnapshotAndPercentiles) {
  MetricHistogram h("test.hist");
  for (int i = 0; i < 90; ++i) h.Observe(1);     // bucket 1
  for (int i = 0; i < 10; ++i) h.Observe(1000);  // bucket 10
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u * 1 + 10u * 1000);
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets[0].first, 1u);
  EXPECT_EQ(snap.buckets[0].second, 90u);
  EXPECT_EQ(snap.buckets[1].first, 10u);
  EXPECT_EQ(snap.buckets[1].second, 10u);
  // p50 lands in the first bucket; p99 in the second (upper-bound estimate).
  EXPECT_EQ(snap.Percentile(0.5), 1u);
  EXPECT_EQ(snap.Percentile(0.99), HistogramBucketUpperBound(10));
  EXPECT_DOUBLE_EQ(snap.Mean(), (90.0 + 10 * 1000) / 100.0);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_EQ(h.Snapshot().sum, 0u);
}

TEST(MetricsTest, EmptyHistogramPercentile) {
  MetricHistogram h("test.empty");
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.99), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(MetricsTest, PercentileEdgeCases) {
  // Empty: every p answers 0 (already covered above for p99; pin the edges).
  EXPECT_EQ(HistogramSnapshot{}.Percentile(0.0), 0u);
  EXPECT_EQ(HistogramSnapshot{}.Percentile(1.0), 0u);

  MetricHistogram h("test.percentile_edges");
  for (int i = 0; i < 5; ++i) h.Observe(100);  // single bucket
  const HistogramSnapshot single = h.Snapshot();
  ASSERT_EQ(single.buckets.size(), 1u);
  const uint64_t bound = HistogramBucketUpperBound(single.buckets[0].first);
  // With one occupied bucket every quantile collapses to its upper bound,
  // and out-of-range p clamps rather than misbehaving.
  EXPECT_EQ(single.Percentile(0.0), bound);
  EXPECT_EQ(single.Percentile(0.5), bound);
  EXPECT_EQ(single.Percentile(1.0), bound);
  EXPECT_EQ(single.Percentile(-0.5), bound);
  EXPECT_EQ(single.Percentile(2.0), bound);

  // p=0 answers the first occupied bucket, p=1 the last.
  MetricHistogram two("test.percentile_two");
  two.Observe(1);
  two.Observe(1000);
  const HistogramSnapshot snap = two.Snapshot();
  EXPECT_EQ(snap.Percentile(0.0), HistogramBucketUpperBound(1));
  EXPECT_EQ(snap.Percentile(1.0), HistogramBucketUpperBound(10));
}

TEST(MetricsTest, PercentilesAreMonotoneOverRandomFills) {
  Random rng(20260805);
  for (int round = 0; round < 50; ++round) {
    MetricHistogram h("test.percentile_mono");
    const int n = static_cast<int>(rng.Uniform(1, 200));
    for (int i = 0; i < n; ++i) {
      h.Observe(static_cast<uint64_t>(rng.Uniform(0, 1 << 20)));
    }
    const HistogramSnapshot snap = h.Snapshot();
    uint64_t prev = 0;
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
      const uint64_t q = snap.Percentile(p);
      EXPECT_GE(q, prev) << "p=" << p << " round=" << round;
      prev = q;
    }
  }
}

/// Random string from character classes JsonEscape must handle: quotes,
/// backslashes, named and unnamed control characters, and multi-byte UTF-8.
std::string NastyString(Random& rng) {
  static const std::string kPieces[] = {
      "plain", "x", "\"", "\\", "\n", "\t", "\r", "\b", "\f",
      std::string(1, '\x01'), std::string(1, '\x1f'),
      "caf\xC3\xA9",          // é (2-byte UTF-8)
      "\xE2\x86\x92",         // → (3-byte UTF-8)
      "\xF0\x9F\x92\xBE",     // 💾 (4-byte UTF-8)
      "\\u0041", "{}", "[]", ":"};
  constexpr int64_t kNumPieces = sizeof(kPieces) / sizeof(kPieces[0]);
  std::string out;
  const int pieces = static_cast<int>(rng.Uniform(0, 20));
  for (int i = 0; i < pieces; ++i) {
    out += kPieces[rng.Uniform(0, kNumPieces - 1)];
  }
  return out;
}

TEST(MetricsTest, JsonEscapeFuzzRoundTrip) {
  Random rng(424242);
  for (int i = 0; i < 500; ++i) {
    const std::string original = NastyString(rng);
    const std::string doc = "\"" + JsonEscape(original) + "\"";
    ASSERT_OK_AND_ASSIGN(testing::JsonValue v, testing::JsonParser::Parse(doc));
    EXPECT_EQ(v.string, original) << "doc: " << doc;
  }
}

TEST(MetricsTest, SnapshotJsonRoundTripsNastyMetricNames) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  const std::string nasty = "metrics_test.nasty \"quoted\\name\"\twith caf\xC3\xA9";
  reg.GetCounter(nasty).Add(3);
  reg.GetHistogram("metrics_test.roundtrip_hist").Observe(17);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue doc,
                       testing::JsonParser::Parse(reg.Scrape().ToJson()));
  ASSERT_TRUE(doc.at("counters").has(nasty));
  EXPECT_EQ(doc.at("counters").at(nasty).number, "3");
  ASSERT_TRUE(doc.at("histograms").has("metrics_test.roundtrip_hist"));
  EXPECT_TRUE(doc.at("histograms").at("metrics_test.roundtrip_hist").has("p50"));
}

TEST(MetricsTest, RegistryHandlesAreStableAndScrapable) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  MetricCounter& c = reg.GetCounter("metrics_test.stable");
  EXPECT_EQ(&c, &reg.GetCounter("metrics_test.stable"));
  c.Add(5);
  MetricGauge& g = reg.GetGauge("metrics_test.gauge");
  g.Set(3);
  reg.GetHistogram("metrics_test.hist").Observe(64);

  const MetricsSnapshot snap = reg.Scrape();
  EXPECT_GE(snap.counter("metrics_test.stable"), 5u);
  EXPECT_EQ(snap.counter("metrics_test.never_registered"), 0u);
  ASSERT_TRUE(snap.gauges.count("metrics_test.gauge"));
  EXPECT_EQ(snap.gauges.at("metrics_test.gauge"), 3);
  ASSERT_TRUE(snap.histograms.count("metrics_test.hist"));
  EXPECT_GE(snap.histograms.at("metrics_test.hist").count, 1u);
}

TEST(MetricsTest, ResetValuesZeroesButKeepsHandles) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  MetricCounter& c = reg.GetCounter("metrics_test.reset");
  c.Add(9);
  const size_t before = reg.MetricCount();
  reg.ResetValues();
  EXPECT_EQ(reg.MetricCount(), before);  // names stay registered
  EXPECT_EQ(c.Value(), 0u);              // the handle still works...
  c.Increment();
  EXPECT_EQ(reg.Scrape().counter("metrics_test.reset"), 1u);
}

TEST(MetricsTest, SnapshotJsonIsWellFormed) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("metrics_test.json\"quoted").Increment();
  const std::string json = reg.Scrape().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  // The quote in the metric name must be escaped.
  EXPECT_NE(json.find("metrics_test.json\\\"quoted"), std::string::npos);
  EXPECT_EQ(json.find("json\"quoted"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single line";
}

TEST(MetricsTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(MetricsTest, MacrosMatchCompileFlag) {
  // The conformance suite runs in both trees. In the ON tree the macros must
  // record; in the OFF tree they must not even register the name — that is
  // the zero-overhead claim in a testable form.
  MetricsRegistry& reg = MetricsRegistry::Instance();
  TS_COUNTER_INC("metrics_test.macro_probe");
  TS_COUNTER_ADD("metrics_test.macro_probe", 2);
  TS_GAUGE_SET("metrics_test.macro_gauge", 11);
  TS_HISTOGRAM_OBSERVE("metrics_test.macro_hist", 5);
  const MetricsSnapshot snap = reg.Scrape();
  if (MetricsCompiledIn()) {
    EXPECT_EQ(snap.counter("metrics_test.macro_probe"), 3u);
    EXPECT_EQ(snap.gauges.at("metrics_test.macro_gauge"), 11);
    EXPECT_EQ(snap.histograms.at("metrics_test.macro_hist").count, 1u);
  } else {
    EXPECT_EQ(snap.counters.count("metrics_test.macro_probe"), 0u);
    EXPECT_EQ(snap.gauges.count("metrics_test.macro_gauge"), 0u);
    EXPECT_EQ(snap.histograms.count("metrics_test.macro_hist"), 0u);
  }
}

}  // namespace
}  // namespace tempspec
