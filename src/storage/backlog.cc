#include "storage/backlog.h"

#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/page.h"
#include "storage/serde.h"

namespace tempspec {

namespace {
constexpr uint32_t kBacklogMagic = 0x544C4B42;  // "BKLT"
// v3: the header meta is [magic][version][u64 epoch]; the entry count is
// derived by scanning the CRC-guarded data pages ([u32 crc][payload]
// records); WAL records carry the epoch and an LSN equal to the global
// operation index. The epoch is bumped by compaction (ReplaceAll) so stale
// WAL records of a superseded generation are recognizable at replay.
// Earlier versions (v1: trusted count header, no record CRCs; v2: no
// epoch) are rejected at open rather than mis-recovered as empty.
constexpr uint32_t kBacklogVersion = 3;
}  // namespace

std::string BacklogEntry::Encode() const {
  std::string out;
  Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(op));
  enc.PutTimePoint(tt);
  if (op == BacklogOpType::kInsert) {
    EncodeElement(element, &enc);
  } else {
    enc.PutU64(target);
  }
  return out;
}

Result<BacklogEntry> BacklogEntry::Decode(std::string_view payload) {
  Decoder dec(payload);
  BacklogEntry entry;
  TS_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
  if (op != static_cast<uint8_t>(BacklogOpType::kInsert) &&
      op != static_cast<uint8_t>(BacklogOpType::kLogicalDelete)) {
    return Status::Corruption("unknown backlog op ", static_cast<int>(op));
  }
  entry.op = static_cast<BacklogOpType>(op);
  TS_ASSIGN_OR_RETURN(entry.tt, dec.GetTimePoint());
  if (entry.op == BacklogOpType::kInsert) {
    TS_ASSIGN_OR_RETURN(entry.element, DecodeElement(&dec));
  } else {
    TS_ASSIGN_OR_RETURN(entry.target, dec.GetU64());
  }
  return entry;
}

Result<std::unique_ptr<BacklogStore>> BacklogStore::Open(Options options) {
  auto store = std::unique_ptr<BacklogStore>(new BacklogStore());
  if (options.directory.empty()) return store;

  // Recovery is a background span: its stage timings (page scan vs WAL
  // replay) and recovered counts land in the retained-trace ring, and the
  // recovery milestones land in the flight recorder.
  TraceContext span;
  span.Begin("background.recovery");
  span.SetAttr("directory", options.directory);
  TS_FLIGHT(FlightCategory::kRecovery, FlightCode::kRecoveryBegin, 0, 0,
            options.directory);

  TS_ASSIGN_OR_RETURN(store->disk_,
                      DiskManager::Open(options.directory + "/backlog.pages"));
  store->buffer_pool_pages_ = options.buffer_pool_pages;
  store->pool_ = std::make_unique<BufferPool>(store->disk_.get(),
                                              options.buffer_pool_pages);
  {
    TraceContext::StageScope stage(&span, "page_scan");
    TS_RETURN_NOT_OK(store->RecoverFromPages());
  }

  TS_ASSIGN_OR_RETURN(store->wal_,
                      WriteAheadLog::Open(options.directory + "/backlog.wal",
                                          options.sync_mode,
                                          options.sync_every,
                                          store->epoch_));
  // The WAL holds operations appended since the last completed checkpoint —
  // plus, after a crash between checkpoint and WAL reset, stale records the
  // pages already cover. Records of older epochs (a compaction whose WAL
  // reset never became durable) are filtered inside Replay; within the
  // current epoch, LSNs are global operation indices: skip what the pages
  // hold, reject gaps (a gap means durable data was lost).
  const uint64_t persisted = store->persisted_entries_;
  uint64_t expected = persisted;
  uint64_t replayed_count = 0;
  {
    TraceContext::StageScope stage(&span, "wal_replay");
    auto replayed = store->wal_->Replay(
        [&](uint64_t lsn, std::string_view payload) -> Status {
          if (lsn < persisted) return Status::OK();  // already checkpointed
          if (lsn != expected) {
            return Status::Corruption(
                "WAL gap after a damaged page file: pages hold ", persisted,
                " operations, expected WAL lsn ", expected, ", found ", lsn);
          }
          TS_ASSIGN_OR_RETURN(BacklogEntry entry, BacklogEntry::Decode(payload));
          store->entries_.push_back(std::move(entry));
          ++expected;
          return Status::OK();
        });
    TS_RETURN_NOT_OK(replayed.status());
    replayed_count = replayed.ValueOrDie();
  }
  TS_FLIGHT(FlightCategory::kRecovery, FlightCode::kRecoveryWalReplay,
            replayed_count, store->entries_.size(), "");
  store->wal_->SetNextLsn(store->entries_.size());
  TS_COUNTER_INC("storage.backlog.recoveries");
  TS_COUNTER_ADD("storage.backlog.recovered_entries", store->entries_.size());
  TS_FLIGHT(FlightCategory::kRecovery, FlightCode::kRecoveryEnd,
            store->entries_.size(), store->persisted_entries_, "");
  span.AddCounter("recovered_entries", store->entries_.size());
  span.AddCounter("persisted_entries", store->persisted_entries_);
  span.AddCounter("wal_replayed", replayed_count);
  RetainedTraces::Instance().Record(span);
  return store;
}

Status BacklogStore::WriteHeaderPage(BufferPool* pool, uint64_t epoch) {
  {
    TS_ASSIGN_OR_RETURN(PageGuard header, pool->Allocate());
    SlottedPage sp(header.mutable_page());
    sp.Init();
    std::string meta;
    Encoder enc(&meta);
    enc.PutU32(kBacklogMagic);
    enc.PutU32(kBacklogVersion);
    enc.PutU64(epoch);
    TS_RETURN_NOT_OK(sp.Insert(meta).status());
  }
  return pool->FlushAll();
}

Status BacklogStore::RecoverFromPages() {
  if (disk_->page_count() == 0) {
    // Fresh file: create and flush the header page, so a process that exits
    // without ever checkpointing still leaves a well-formed file behind.
    return WriteHeaderPage(pool_.get(), epoch_);
  }

  {
    TS_ASSIGN_OR_RETURN(PageGuard header, pool_->Fetch(0));
    Page page_copy = header.page();
    SlottedPage sp(&page_copy);
    bool header_ok = false;
    if (sp.slot_count() > 0) {
      auto meta = sp.Get(0);
      if (meta.ok()) {
        Decoder dec(meta.ValueOrDie());
        auto magic = dec.GetU32();
        if (magic.ok() && magic.ValueOrDie() == kBacklogMagic) {
          // The magic matches, so this *is* a backlog file: check the
          // version before trusting anything else. A pre-v3 file would
          // otherwise "recover" as empty — its records carry no CRC
          // prefixes, so the data-page scan and the WAL replay would both
          // stop at the first record and silently discard the data.
          auto version = dec.GetU32();
          auto epoch = dec.GetU64();
          if (version.ok() && version.ValueOrDie() != kBacklogVersion) {
            return Status::Corruption(
                "unsupported backlog format version ", version.ValueOrDie(),
                " (this build reads only v", kBacklogVersion,
                "); refusing to recover");
          }
          if (version.ok() && epoch.ok()) {
            header_ok = true;
            epoch_ = epoch.ValueOrDie();
          }
        }
      }
    }
    if (!header_ok) {
      // A single unreadable page is what a crash during store creation
      // leaves behind (the header is written exactly once, before any WAL
      // exists; compaction replaces it only via a completely-written,
      // renamed side file); anything larger is real damage.
      if (disk_->page_count() > 1) {
        return Status::Corruption("bad backlog page-file header");
      }
      header.Release();
      pool_ = std::make_unique<BufferPool>(disk_.get(), buffer_pool_pages_);
      TS_RETURN_NOT_OK(disk_->Truncate());
      return WriteHeaderPage(pool_.get(), epoch_);
    }
  }

  // The page file's entry count is derived, never trusted: scan data pages
  // in order, reading CRC-guarded records until the first torn, corrupt, or
  // never-completed one. Everything from the damaged page onward is
  // quarantined — truncated off the file — not merely skipped: checkpoints
  // append batches on fresh pages at the end, so a scan that only *stopped*
  // at the damage would, after a post-recovery checkpoint, never reach the
  // durable batches beyond it. The truncated records are still covered by
  // the WAL (a page can only be damaged if the checkpoint writing it never
  // completed its WAL reset).
  uint64_t keep_pages = disk_->page_count();
  for (PageId id = 1; id < disk_->page_count(); ++id) {
    const size_t page_first_entry = entries_.size();
    bool damaged = false;
    {
      TS_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
      Page data_copy = guard.page();
      SlottedPage data(&data_copy);
      if (data.slot_count() == 0) damaged = true;  // never-completed page
      for (uint16_t slot = 0; !damaged && slot < data.slot_count(); ++slot) {
        auto record = data.Get(slot);
        if (!record.ok() || record.ValueOrDie().size() < 4) {
          damaged = true;
          break;
        }
        const std::string_view raw = record.ValueOrDie();
        Decoder dec(raw);
        const uint32_t crc = dec.GetU32().ValueOrDie();
        const std::string_view payload = raw.substr(4);
        if (Crc32(payload) != crc) {
          damaged = true;
          break;
        }
        auto entry = BacklogEntry::Decode(payload);
        if (!entry.ok()) {
          damaged = true;
          break;
        }
        entries_.push_back(std::move(entry).ValueOrDie());
      }
    }
    if (damaged) {
      // The page's valid record prefix is dropped along with the page: a
      // damaged page belongs to an unfinished checkpoint batch, so the WAL
      // replay below the caller restores those operations.
      entries_.resize(page_first_entry);
      keep_pages = id;
      break;
    }
  }
  if (keep_pages < disk_->page_count()) {
    TS_FLIGHT(FlightCategory::kRecovery, FlightCode::kRecoveryQuarantine,
              keep_pages, disk_->page_count() - keep_pages, "");
    pool_ = std::make_unique<BufferPool>(disk_.get(), buffer_pool_pages_);
    TS_RETURN_NOT_OK(disk_->TruncateToPages(keep_pages));
  }
  persisted_entries_ = entries_.size();
  TS_FLIGHT(FlightCategory::kRecovery, FlightCode::kRecoveryPages,
            entries_.size(), keep_pages, "");
  return Status::OK();
}

Status BacklogStore::Append(const BacklogEntry& entry) {
  if (io_failed_) {
    return Status::IOError(
        "backlog store is read-only after an IO failure; reopen to recover");
  }
  if (wal_) {
    auto appended = wal_->Append(entry.Encode());
    if (!appended.ok()) {
      // The WAL tail may be torn: a later successful append would land
      // beyond the tear and be unreachable at replay. Fail stop.
      io_failed_ = true;
      return appended.status();
    }
  }
  entries_.push_back(entry);
  TS_COUNTER_INC("storage.backlog.appends");
  return Status::OK();
}

std::vector<Element> BacklogStore::MaterializeState(TimePoint tt) const {
  std::unordered_map<ElementSurrogate, Element> alive;
  for (const BacklogEntry& e : entries_) {
    if (e.tt > tt) break;  // entries are in transaction-time order
    if (e.op == BacklogOpType::kInsert) {
      alive.emplace(e.element.element_surrogate, e.element);
    } else {
      alive.erase(e.target);
    }
  }
  std::vector<Element> out;
  out.reserve(alive.size());
  for (auto& [id, element] : alive) out.push_back(std::move(element));
  return out;
}

std::vector<Element> BacklogStore::ReconstructElements() const {
  std::vector<Element> out;
  std::unordered_map<ElementSurrogate, size_t> index;
  for (const BacklogEntry& e : entries_) {
    if (e.op == BacklogOpType::kInsert) {
      index[e.element.element_surrogate] = out.size();
      out.push_back(e.element);
    } else {
      auto it = index.find(e.target);
      if (it != index.end()) out[it->second].tt_end = e.tt;
    }
  }
  return out;
}

Status BacklogStore::PersistRange(BufferPool* pool, size_t begin, size_t end) {
  if (begin >= end) return Status::OK();
  // Always start the batch on a fresh page: the tail page of the previous
  // checkpoint holds records the WAL no longer covers, and a torn in-place
  // rewrite of that page would destroy durable data.
  PageId current = kInvalidPageId;
  for (size_t i = begin; i < end; ++i) {
    const std::string payload = entries_[i].Encode();
    std::string record;
    Encoder enc(&record);
    enc.PutU32(Crc32(payload));
    record += payload;
    bool stored = false;
    if (current != kInvalidPageId) {
      TS_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(current));
      SlottedPage sp(guard.mutable_page());
      if (sp.Fits(record.size())) {
        TS_RETURN_NOT_OK(sp.Insert(record).status());
        stored = true;
      }
    }
    if (!stored) {
      TS_ASSIGN_OR_RETURN(PageGuard guard, pool->Allocate());
      SlottedPage sp(guard.mutable_page());
      sp.Init();
      TS_RETURN_NOT_OK(sp.Insert(record).status());
      current = guard.id();
    }
  }
  return Status::OK();
}

Status BacklogStore::CheckpointInternal(TraceContext* trace) {
  // Order matters: an operation must never exist only in a reset WAL.
  // 1. Persist the new batch onto fresh pages and make them durable.
  {
    TraceContext::StageScope stage(trace, "persist");
    TS_RETURN_NOT_OK(
        PersistRange(pool_.get(), persisted_entries_, entries_.size()));
    TS_RETURN_NOT_OK(pool_->FlushAll());
  }
  // 2. Only now discard the WAL (truncate + fsync file and directory).
  {
    TraceContext::StageScope stage(trace, "wal_reset");
    TS_RETURN_NOT_OK(wal_->Reset());
  }
  wal_->SetNextLsn(entries_.size());
  persisted_entries_ = entries_.size();
  return Status::OK();
}

Status BacklogStore::Checkpoint() {
  if (!wal_) return Status::OK();
  if (io_failed_) {
    return Status::IOError(
        "backlog store is read-only after an IO failure; reopen to recover");
  }
  TraceContext span;
  span.Begin("background.checkpoint");
  const uint64_t pending = entries_.size() - persisted_entries_;
  TS_FLIGHT(FlightCategory::kCheckpoint, FlightCode::kCheckpointBegin, pending,
            entries_.size(), "");
  Status st = CheckpointInternal(&span);
  // A half-completed checkpoint left pages the scan-based recovery would
  // double-count if we blindly re-ran it; fail stop until reopened.
  if (!st.ok()) io_failed_ = true;
  if (st.ok()) {
    TS_COUNTER_INC("storage.backlog.checkpoints");
    TS_FLIGHT(FlightCategory::kCheckpoint, FlightCode::kCheckpointEnd,
              persisted_entries_, 0, "");
  }
  span.AddCounter("pending_entries", pending);
  span.AddCounter("persisted_entries", persisted_entries_);
  span.SetAttr("status", st.ok() ? "ok" : "error");
  RetainedTraces::Instance().Record(span);
  return st;
}

Status BacklogStore::ReplaceAll(std::vector<BacklogEntry> entries,
                                TraceContext* trace) {
  if (io_failed_) {
    return Status::IOError(
        "backlog store is read-only after an IO failure; reopen to recover");
  }
  const uint64_t old_count = entries_.size();
  entries_ = std::move(entries);
  persisted_entries_ = 0;
  if (!wal_) return Status::OK();
  TS_FLIGHT(FlightCategory::kCompaction, FlightCode::kCompactionBegin,
            old_count, entries_.size(), "");

  // Build the compacted generation in a side file and adopt it with an
  // atomic rename: a crash at any point leaves either the old complete
  // state or the new one on disk, never a truncated hybrid. The new header
  // carries a bumped epoch, and WAL records are epoch-stamped, so the stale
  // records of the old generation are discarded at replay even when the
  // Reset below never becomes durable — their old, higher LSNs could
  // otherwise alias the compacted count (bogus replay) or trip the
  // recovery gap check.
  const uint64_t new_epoch = epoch_ + 1;
  Status st = [&]() -> Status {
    std::unique_ptr<DiskManager> side;
    std::unique_ptr<BufferPool> side_pool;
    {
      TraceContext::StageScope stage(trace, "side_build");
      TS_ASSIGN_OR_RETURN(side, DiskManager::Open(disk_->path() + ".compact"));
      if (side->page_count() > 0) {
        // Leftover from a compaction that crashed before its rename.
        TS_RETURN_NOT_OK(side->Truncate());
      }
      side_pool = std::make_unique<BufferPool>(side.get(), buffer_pool_pages_);
      TS_RETURN_NOT_OK(WriteHeaderPage(side_pool.get(), new_epoch));
      TS_RETURN_NOT_OK(PersistRange(side_pool.get(), 0, entries_.size()));
      TS_RETURN_NOT_OK(side_pool->FlushAll());
    }
    {
      TraceContext::StageScope stage(trace, "rename");
      TS_RETURN_NOT_OK(side->RenameTo(disk_->path()));
    }
    TS_FLIGHT(FlightCategory::kCompaction, FlightCode::kCompactionRename,
              new_epoch, 0, "");
    // The rename is the commit point: adopt the new generation (the old
    // pool's frames reference the unlinked old file) and discard the WAL.
    pool_ = std::move(side_pool);
    disk_ = std::move(side);
    epoch_ = new_epoch;
    wal_->SetEpoch(new_epoch);
    {
      TraceContext::StageScope stage(trace, "wal_reset");
      TS_RETURN_NOT_OK(wal_->Reset());
    }
    wal_->SetNextLsn(entries_.size());
    persisted_entries_ = entries_.size();
    return Status::OK();
  }();
  if (!st.ok()) io_failed_ = true;
  if (st.ok()) {
    TS_COUNTER_INC("storage.backlog.compactions");
    TS_FLIGHT(FlightCategory::kCompaction, FlightCode::kCompactionEnd,
              entries_.size(), epoch_, "");
  }
  return st;
}

size_t BacklogStore::EncodedBytes() const {
  size_t total = 0;
  for (const auto& e : entries_) total += e.Encode().size();
  return total;
}

}  // namespace tempspec
