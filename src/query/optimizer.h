// Specialization-aware planning.
#ifndef TEMPSPEC_QUERY_OPTIMIZER_H_
#define TEMPSPEC_QUERY_OPTIMIZER_H_

#include <optional>

#include "model/schema.h"
#include "query/plan.h"
#include "spec/specialization.h"

namespace tempspec {

/// \brief Chooses execution strategies from the declared specializations.
class Optimizer {
 public:
  Optimizer(const SpecializationSet& specs, const Schema& schema);

  /// \brief Plans a timeslice (historical) query at valid time `vt`.
  ///
  /// Strategy ladder (first applicable wins):
  ///  1. degenerate           -> rollback equivalence on the append-only store
  ///  2. any fixed band       -> transaction-time window [vt - hi, vt - lo]
  ///  3. non-decr/sequential  -> binary search on the insertion order
  ///  4. otherwise            -> valid-time interval index
  PlanChoice PlanTimeslice(TimePoint vt) const;

  /// \brief Plans a valid-time range query over [lo, hi).
  PlanChoice PlanValidRange(TimePoint lo, TimePoint hi) const;

  /// \brief The combined insertion-anchored band over the queried valid
  /// endpoint(s), when one is declared with fixed offsets.
  std::optional<Band> CombinedFixedBand() const;

  /// \brief True if valid times are guaranteed non-decreasing in insertion
  /// order (globally non-decreasing or sequential is declared).
  bool ValidTimesMonotone() const;

  /// \brief True if the relation is declared degenerate.
  bool IsDegenerate() const;

 private:
  const SpecializationSet& specs_;
  const Schema& schema_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_OPTIMIZER_H_
