// In-memory B+tree keyed by 64-bit integers (time-stamp chronons).
//
// Used as the transaction-time index of a relation: key = tt chronons,
// value = position in the backlog / element store. Supports duplicate keys,
// point lookup, and inclusive range scans.
#ifndef TEMPSPEC_INDEX_BTREE_H_
#define TEMPSPEC_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace tempspec {

/// \brief B+tree mapping int64 keys to uint64 values.
class BTreeIndex {
 public:
  static constexpr size_t kFanout = 64;  // max keys per node

  BTreeIndex();
  ~BTreeIndex();
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(int64_t key, uint64_t value);

  /// \brief All values with the exact key.
  std::vector<uint64_t> Lookup(int64_t key) const;

  /// \brief Visits (key, value) pairs with lo <= key <= hi in key order;
  /// return false from the visitor to stop early.
  void Scan(int64_t lo, int64_t hi,
            const std::function<bool(int64_t, uint64_t)>& visit) const;

  /// \brief Values for keys in [lo, hi].
  std::vector<uint64_t> Range(int64_t lo, int64_t hi) const;

  size_t size() const { return size_; }
  size_t height() const;

 private:
  struct Node;

  void SplitChild(Node* parent, size_t index);
  void InsertNonFull(Node* node, int64_t key, uint64_t value);
  const Node* FindLeaf(int64_t key) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace tempspec

#endif  // TEMPSPEC_INDEX_BTREE_H_
