#include "index/btree.h"

#include <algorithm>

namespace tempspec {

struct BTreeIndex::Node {
  bool leaf = true;
  std::vector<int64_t> keys;                    // sorted
  std::vector<uint64_t> values;                 // leaf: parallel to keys
  std::vector<std::unique_ptr<Node>> children;  // internal: keys.size() + 1
  Node* next = nullptr;                         // leaf chain
};

BTreeIndex::BTreeIndex() : root_(std::make_unique<Node>()) {}

BTreeIndex::~BTreeIndex() = default;

void BTreeIndex::SplitChild(Node* parent, size_t index) {
  Node* child = parent->children[index].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  const size_t mid = child->keys.size() / 2;

  int64_t separator;
  if (child->leaf) {
    // B+tree: the separator is copied up; all records stay in leaves.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1, std::move(right));
}

void BTreeIndex::Insert(int64_t key, uint64_t value) {
  if (root_->keys.size() >= kFanout) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, value);
  ++size_;
}

void BTreeIndex::InsertNonFull(Node* node, int64_t key, uint64_t value) {
  while (!node->leaf) {
    size_t i = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    if (node->children[i]->keys.size() >= kFanout) {
      SplitChild(node, i);
      if (key >= node->keys[i]) ++i;
    }
    node = node->children[i].get();
  }
  const auto pos = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const size_t i = static_cast<size_t>(pos - node->keys.begin());
  node->keys.insert(pos, key);
  node->values.insert(node->values.begin() + i, value);
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(int64_t key) const {
  // Descends left of the first separator >= key. Duplicates of a separator
  // key can straddle the leaf boundary, so this lands on the *leftmost* leaf
  // that could contain the key; range scans continue along the leaf chain.
  const Node* node = root_.get();
  while (!node->leaf) {
    const size_t i = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[i].get();
  }
  return node;
}

std::vector<uint64_t> BTreeIndex::Lookup(int64_t key) const {
  std::vector<uint64_t> out;
  Scan(key, key, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

void BTreeIndex::Scan(int64_t lo, int64_t hi,
                      const std::function<bool(int64_t, uint64_t)>& visit) const {
  if (lo > hi || size_ == 0) return;
  for (const Node* node = FindLeaf(lo); node != nullptr; node = node->next) {
    const size_t start = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
        node->keys.begin());
    for (size_t i = start; i < node->keys.size(); ++i) {
      if (node->keys[i] > hi) return;
      if (!visit(node->keys[i], node->values[i])) return;
    }
  }
}

std::vector<uint64_t> BTreeIndex::Range(int64_t lo, int64_t hi) const {
  std::vector<uint64_t> out;
  Scan(lo, hi, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

size_t BTreeIndex::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[0].get();
    ++h;
  }
  return h;
}

}  // namespace tempspec
