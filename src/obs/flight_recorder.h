// Black-box flight recorder: a lock-free, fixed-memory ring of structured
// events recorded from the storage stack (WAL append/sync/reset, page IO,
// checkpoint, recovery, compaction, buffer-pool eviction), the fault layer
// (every failpoint fire), and the decision layer (optimizer plan choice,
// drift verdict transitions, advisor notes).
//
// The metrics registry answers "how many"; EXPLAIN ANALYZE answers "what did
// *this query* do". Neither answers "what was the engine doing just before
// it died" — the question every crash-harness artifact and every real crash
// raises. The flight recorder is that answer: the last `capacity` events are
// always resident in fixed memory, serializable as JSONL by a fatal-signal
// handler, the /debug/events endpoint, and SHOW FLIGHT RECORDER.
//
// Concurrency: one shared ring, multi-writer, any-time readers. A writer
// claims a sequence number with one relaxed fetch_add, waits (in practice
// never — only when a writer lapped a full ring while another writer was
// suspended mid-record) for the slot's previous generation to commit, and
// publishes through a per-slot seqlock: state goes committed(prev) ->
// busy(seq) -> committed(seq), payload words are relaxed atomic stores
// bracketed by release ordering. Readers validate the state on both sides
// of the payload copy and discard torn slots instead of delivering them.
// Every field of a slot is a std::atomic, so concurrent drains are
// TSan-clean by construction, not by suppression.
//
// Compile-out: mirrors obs/metrics.h. The class always compiles; engine
// call sites use TS_FLIGHT, which compiles to nothing unless
// TEMPSPEC_FLIGHTRECORDER is defined (CMake option, default ON), and
// FlightRecorderCompiledIn() lets tests detect a vacuous build.
#ifndef TEMPSPEC_OBS_FLIGHT_RECORDER_H_
#define TEMPSPEC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace tempspec {

/// \brief True when the engine was compiled with TEMPSPEC_FLIGHTRECORDER,
/// i.e. the TS_FLIGHT call sites actually record anything.
bool FlightRecorderCompiledIn();

/// \brief Which subsystem recorded the event.
enum class FlightCategory : uint8_t {
  kWal = 0,
  kPage,
  kBufferPool,
  kCheckpoint,
  kRecovery,
  kCompaction,
  kFault,
  kPlan,
  kDrift,
  kAdvisor,
  kServer,
};
const char* FlightCategoryToString(FlightCategory category);

/// \brief What happened. Codes are namespaced by convention
/// ("wal.append", "fault.inject", ...) via FlightCodeToString.
enum class FlightCode : uint8_t {
  kWalAppend = 0,   // arg0 = lsn, arg1 = record bytes
  kWalSync,         // arg0 = durable bytes after the sync
  kWalReset,        // arg0 = epoch the emptied log continues under
  kPageRead,        // arg0 = page id
  kPageWrite,       // arg0 = page id, arg1 = bytes written
  kDiskSync,        // page-file fsync completed
  kEviction,        // arg0 = evicted page id, arg1 = 1 if it was dirty
  kCheckpointBegin, // arg0 = ops pending persistence, arg1 = total ops
  kCheckpointEnd,   // arg0 = ops now persisted
  kRecoveryBegin,
  kRecoveryPages,      // arg0 = entries scanned off pages, arg1 = pages kept
  kRecoveryQuarantine, // arg0 = first damaged page, arg1 = entries dropped
  kRecoveryWalReplay,  // arg0 = records replayed, arg1 = records delivered
  kRecoveryEnd,        // arg0 = total recovered ops, arg1 = persisted ops
  kCompactionBegin,    // arg0 = old op count, arg1 = compacted op count
  kCompactionRename,   // arg0 = adopted epoch
  kCompactionEnd,      // arg0 = op count of the new generation
  kFaultInject,        // arg0 = FaultKind, arg1 = site hit count; detail = site
  kCrashLatch,         // registry entered the sticky crashed state
  kPlanChoice,         // arg0 = ExecutionStrategy, arg1 = ScanKernel
  kDriftVerdict,       // arg0 = observed kind, arg1 = lattice distance
  kAdvisorNote,        // arg0 = note count; detail = relation
  kServerStart,        // arg0 = bound port
  kServerStop,         // arg0 = connections served over the lifetime
  kServerAccept,       // arg0 = connection id, arg1 = open connections
  kServerReject,       // arg0 = connection id, arg1 = inflight; detail = why
  kServerRequest,      // arg0 = connection id, arg1 = request bytes
  kServerDeadline,     // arg0 = connection id, arg1 = deadline millis
};
const char* FlightCodeToString(FlightCode code);

/// \brief Bytes of inline detail text per event (longer details truncate).
constexpr size_t kFlightDetailBytes = 24;

/// \brief One drained event (decoded slot).
struct FlightEvent {
  uint64_t seq = 0;       // claim order; strictly increasing across a drain
  uint64_t nanos = 0;     // steady-clock nanoseconds at record time
  uint32_t thread_id = 0; // small per-thread id (ThisThreadFlightId)
  FlightCategory category = FlightCategory::kWal;
  FlightCode code = FlightCode::kWalAppend;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  std::string detail;

  /// \brief Single JSON line: {"seq":..,"nanos":..,"tid":..,
  /// "category":"wal","code":"wal.append","arg0":..,"arg1":..,"detail":".."}.
  std::string ToJson() const;
};

/// \brief This thread's small integer id (assigned on first use).
uint32_t ThisThreadFlightId();

/// \brief The event ring. Fixed memory after construction; capacity rounds
/// up to a power of two.
class FlightRecorder {
 public:
  /// \brief Process-wide instance (what TS_FLIGHT and the surfaces use).
  /// Capacity comes from TEMPSPEC_FLIGHT_CAPACITY when set (clamped to
  /// [64, 1M]); default 4096 slots = 256 KiB.
  static FlightRecorder& Instance();

  explicit FlightRecorder(size_t capacity = 4096);

  /// \brief Records one event. Lock-free fast path: one fetch_add plus
  /// eight relaxed/release stores; `detail` beyond kFlightDetailBytes is
  /// truncated, never allocated.
  void Record(FlightCategory category, FlightCode code, int64_t arg0,
              int64_t arg1, std::string_view detail);

  /// \brief Total events ever recorded (events with seq < head() - capacity
  /// have been overwritten).
  uint64_t head() const { return next_.load(std::memory_order_acquire); }
  size_t capacity() const { return slots_.size(); }

  /// \brief The resident events, oldest first, strictly increasing seq.
  /// Safe under concurrent writers: slots overwritten mid-drain are skipped.
  std::vector<FlightEvent> Snapshot() const;

  /// \brief Snapshot() as JSONL (one event per line).
  std::string ToJsonl() const;

  /// \brief Serializes the ring to `fd` as JSONL. Async-signal-safe: no
  /// allocation, no locks, manual formatting, write(2) only.
  void DumpToFd(int fd) const;

  /// \brief DumpToFd to a fresh file at `path` (truncating). Used by the
  /// crash harness after simulated crashes, where the process survives.
  Status DumpToFile(const std::string& path) const;

  /// \brief Installs a fatal-signal handler (SIGABRT/SEGV/BUS/ILL/FPE) that
  /// dumps the process-wide ring to `path` and re-raises. `path` is copied
  /// into static storage; later calls replace it.
  static void InstallCrashHandler(const char* path);

  /// \brief InstallCrashHandler(TEMPSPEC_FLIGHT_DUMP) when that env var is
  /// set (called from TelemetryExporter::MaybeStartFromEnv).
  static void MaybeInstallFromEnv();

 private:
  // 64 bytes: the seqlock state plus seven payload words.
  //   word[0] nanos, word[1] tid<<32 | category<<8 | code,
  //   word[2..3] arg0/arg1, word[4..6] detail bytes (zero-padded).
  // state encodes the slot generation: 0 = never written,
  // 2*seq+1 = write of `seq` in progress, 2*seq+2 = `seq` committed.
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
    std::atomic<uint64_t> word[7];
  };

  /// \brief Seqlock-validated copy of the slot holding `seq`; false when
  /// torn or already overwritten.
  bool ReadSlotWords(uint64_t seq, uint64_t words[7]) const;

  std::atomic<uint64_t> next_{0};
  uint64_t mask_;
  std::vector<Slot> slots_;
};

// TS_FLIGHT(category, code, arg0, arg1, detail) — the engine-side record
// macro. Compiles to nothing (arguments unevaluated) unless
// TEMPSPEC_FLIGHTRECORDER is defined. TS_FLIGHT_ONLY(code) guards larger
// blocks, mirroring TS_METRICS_ONLY.
#ifdef TEMPSPEC_FLIGHTRECORDER
#define TS_FLIGHT_ONLY(code) code
#define TS_FLIGHT(category, code, arg0, arg1, detail)                   \
  ::tempspec::FlightRecorder::Instance().Record(                        \
      (category), (code), static_cast<int64_t>(arg0),                   \
      static_cast<int64_t>(arg1), (detail))
#else
#define TS_FLIGHT_ONLY(code)
#define TS_FLIGHT(category, code, arg0, arg1, detail) \
  do {                                                \
  } while (0)
#endif  // TEMPSPEC_FLIGHTRECORDER

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_FLIGHT_RECORDER_H_
