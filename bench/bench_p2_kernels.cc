// P2 — Branch-free columnar scan kernels vs row-at-a-time execution.
//
// The tentpole claim: per-pane specialized kernels over the relation's
// columnar StampStore beat the generic row-at-a-time Element walk by >= 2x
// on large event streams (the acceptance gate for the degenerate and
// nondecreasing panes at 1M events). Four pane relations, each declaring
// exactly one Figure-1 specialization family:
//
//   degenerate    vt = tt                 -> rollback equivalence +
//                                            degenerate_columnar
//   nondecreasing vt sorted by insertion  -> monotone binary search +
//                                            monotone_columnar
//   bounded       vt in [tt - 60s, tt]    -> transaction window +
//                                            banded_columnar
//   general       unrestricted offsets    -> (forced plans only; the planner
//                                            picks the index probe here)
//
// Per pane, three executions of the same 1/16-domain valid-range query:
//   *_RowAtATime     — full scan, per-row Element predicate (the baseline
//                      the ISSUE's "generic row-at-a-time" names);
//   *_GenericKernel  — full scan, generic two-half-plane columnar kernel
//                      (isolates columnar layout + branch-free evaluation);
//   *_Specialized    — the optimizer's plan (strategy + pane kernel:
//                      adds the candidate-range narrowing on top).
//
// Plus the bitmap-consuming morsel path (parallel generic kernel) and a
// non-timing parity benchmark asserting specialized == row-at-a-time
// position sets, so the speedups compare equal results.
//
// Stream size: TEMPSPEC_P2_EVENTS (default 1<<20). CI runs 65536 for the
// JSON-schema smoke; the checked-in BENCH_p2_kernels.json is the 1M run.
#include <cstdlib>

#include "bench_common.h"
#include "util/thread_pool.h"

using namespace tempspec;
using tempspec::bench::FullScanPlan;
using tempspec::bench::ReportQueryStats;
using tempspec::bench::Require;

namespace {

int64_t EventCount() {
  static const int64_t n = [] {
    const char* env = std::getenv("TEMPSPEC_P2_EVENTS");
    const int64_t parsed = env != nullptr ? std::atoll(env) : 0;
    return parsed > 0 ? parsed : int64_t{1} << 20;  // 1M default
  }();
  return n;
}

/// \brief A full-scan plan that runs a columnar kernel over all positions
/// (same candidates as FullScanPlan(); only the scan loop differs).
PlanChoice FullScanWith(ScanKernel kernel) {
  return PlanChoice{ExecutionStrategy::kFullScan, TimeInterval::All(), "",
                    kernel};
}

enum class Pane { kDegenerate, kNonDecreasing, kBounded, kGeneral };

struct PaneRelation {
  std::shared_ptr<LogicalClock> clock;
  std::unique_ptr<TemporalRelation> relation;
  TimePoint vt_min = TimePoint::Max();
  TimePoint vt_max = TimePoint::Min();
};

const Duration kBoundDelta = Duration::Seconds(60);

PaneRelation* BuildPane(Pane pane) {
  auto* out = new PaneRelation();
  out->clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(200),
                                              Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Schema::Make("p2",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"v", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  options.clock = out->clock;
  switch (pane) {
    case Pane::kDegenerate:
      options.specializations.AddEvent(EventSpecialization::Degenerate());
      break;
    case Pane::kNonDecreasing:
      options.specializations.AddOrdering(
          OrderingSpec(OrderingKind::kNonDecreasing));
      break;
    case Pane::kBounded:
      options.specializations.AddEvent(Require(
          EventSpecialization::StronglyRetroactivelyBounded(kBoundDelta)));
      break;
    case Pane::kGeneral:
      break;
  }
  out->relation = TemporalRelation::Open(std::move(options)).ValueOrDie();

  Random rng(2026);
  const int64_t n = EventCount();
  for (int64_t i = 0; i < n; ++i) {
    const TimePoint tt = out->clock->Peek();
    TimePoint vt = tt;
    switch (pane) {
      case Pane::kDegenerate:
      case Pane::kNonDecreasing:
        vt = tt;  // degenerate streams are also non-decreasing
        break;
      case Pane::kBounded:
        vt = tt - Duration::Seconds(rng.Uniform(0, 60));
        break;
      case Pane::kGeneral:
        vt = tt + Duration::Seconds(rng.Uniform(-120, 120));
        break;
    }
    Require(out->relation
                ->InsertEvent(i % 64, vt, Tuple{int64_t{i % 64}, 0.5})
                .status());
    if (vt < out->vt_min) out->vt_min = vt;
    if (out->vt_max < vt) out->vt_max = vt;
  }
  return out;
}

PaneRelation& For(Pane pane) {
  static PaneRelation* degenerate = BuildPane(Pane::kDegenerate);
  static PaneRelation* nondecreasing = BuildPane(Pane::kNonDecreasing);
  static PaneRelation* bounded = BuildPane(Pane::kBounded);
  static PaneRelation* general = BuildPane(Pane::kGeneral);
  switch (pane) {
    case Pane::kDegenerate: return *degenerate;
    case Pane::kNonDecreasing: return *nondecreasing;
    case Pane::kBounded: return *bounded;
    case Pane::kGeneral: return *general;
  }
  return *general;
}

/// \brief A ~1/16th slice of the pane's valid domain, varying per call.
TimeInterval QueryWindow(const PaneRelation& pr, Random& rng) {
  const int64_t span = pr.vt_max.micros() - pr.vt_min.micros();
  const int64_t width = span / 16;
  const int64_t lo = pr.vt_min.micros() + rng.Uniform(0, span - width);
  return TimeInterval(TimePoint::FromMicros(lo),
                      TimePoint::FromMicros(lo + width));
}

/// \brief Times `plan` (or, with `planned` set, the optimizer's plan) on
/// 1/16-domain valid-range queries over `pane`, serial execution.
void RunPane(benchmark::State& state, Pane pane, const PlanChoice& plan,
             bool planned, ThreadPool* pool = nullptr) {
  PaneRelation& pr = For(pane);
  ExecutorOptions options;
  options.pool = pool;
  QueryExecutor exec(*pr.relation, options);
  Random rng(61);
  QueryStats stats;
  for (auto _ : state) {
    const TimeInterval w = QueryWindow(pr, rng);
    const PlanChoice chosen =
        planned ? exec.optimizer().PlanValidRange(w.begin(), w.end()) : plan;
    ResultSet set =
        exec.ValidRangeSetWith(chosen, w.begin(), w.end(), &stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
  // Scan throughput: every benchmark answers the same logical query over the
  // same N-event stream, so items/s compares kernels AND strategies.
  state.SetItemsProcessed(state.iterations() * EventCount());
}

#define PANE_BENCHES(Name, PANE)                                            \
  void BM_P2_##Name##_RowAtATime(benchmark::State& state) {                 \
    RunPane(state, PANE, FullScanPlan(), /*planned=*/false);                \
  }                                                                         \
  void BM_P2_##Name##_GenericKernel(benchmark::State& state) {              \
    RunPane(state, PANE, FullScanWith(ScanKernel::kGeneric),                \
            /*planned=*/false);                                             \
  }                                                                         \
  void BM_P2_##Name##_Specialized(benchmark::State& state) {                \
    RunPane(state, PANE, PlanChoice{}, /*planned=*/true);                   \
  }                                                                         \
  BENCHMARK(BM_P2_##Name##_RowAtATime);                                     \
  BENCHMARK(BM_P2_##Name##_GenericKernel);                                  \
  BENCHMARK(BM_P2_##Name##_Specialized)

PANE_BENCHES(Degenerate, Pane::kDegenerate);
PANE_BENCHES(NonDecreasing, Pane::kNonDecreasing);
PANE_BENCHES(Bounded, Pane::kBounded);
PANE_BENCHES(General, Pane::kGeneral);

#undef PANE_BENCHES

// The bitmap-consuming morsel path: generic kernel full scan fanned out over
// the pool, each morsel draining its selection bitmap into a private buffer.
void BM_P2_General_GenericKernel_Parallel(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  RunPane(state, Pane::kGeneral, FullScanWith(ScanKernel::kGeneric),
          /*planned=*/false, &pool);
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(pool.size()));
}
BENCHMARK(BM_P2_General_GenericKernel_Parallel)->Arg(2)->Arg(4)->Arg(0);

// Existence kernel vs the row walk it replaced (current-state query).
void BM_P2_Existence_Current(benchmark::State& state) {
  PaneRelation& pr = For(Pane::kGeneral);
  QueryExecutor exec(*pr.relation, ExecutorOptions{.pool = nullptr});
  QueryStats stats;
  for (auto _ : state) {
    ResultSet set = exec.CurrentSet(&stats);
    benchmark::DoNotOptimize(set.positions().data());
  }
  ReportQueryStats(state, stats);
  state.SetItemsProcessed(state.iterations() * EventCount());
}
BENCHMARK(BM_P2_Existence_Current);

// Not a timing benchmark: asserts that on every pane the specialized plan,
// the generic kernel, and the row-at-a-time baseline return byte-identical
// position sets, so the speedups above are comparing equal results.
void BM_P2_KernelParity(benchmark::State& state) {
  constexpr Pane kPanes[] = {Pane::kDegenerate, Pane::kNonDecreasing,
                             Pane::kBounded, Pane::kGeneral};
  ThreadPool pool(4);
  Random rng(67);
  for (auto _ : state) {
    for (Pane pane : kPanes) {
      PaneRelation& pr = For(pane);
      QueryExecutor serial(*pr.relation, ExecutorOptions{.pool = nullptr});
      QueryExecutor parallel(*pr.relation, ExecutorOptions{.pool = &pool});
      const TimeInterval w = QueryWindow(pr, rng);
      const ResultSet row =
          serial.ValidRangeSetWith(FullScanPlan(), w.begin(), w.end());
      const ResultSet generic = serial.ValidRangeSetWith(
          FullScanWith(ScanKernel::kGeneric), w.begin(), w.end());
      const ResultSet specialized =
          serial.ValidRangeSet(w.begin(), w.end());
      const ResultSet par = parallel.ValidRangeSetWith(
          FullScanWith(ScanKernel::kGeneric), w.begin(), w.end());
      if (generic.positions() != row.positions()) {
        state.SkipWithError("generic kernel diverged from row-at-a-time");
        return;
      }
      if (specialized.positions() != row.positions()) {
        state.SkipWithError("specialized kernel diverged from row-at-a-time");
        return;
      }
      if (par.positions() != row.positions()) {
        state.SkipWithError("parallel bitmap path diverged from serial");
        return;
      }
      benchmark::DoNotOptimize(par.size());
    }
  }
}
BENCHMARK(BM_P2_KernelParity)->Iterations(3);

}  // namespace

TEMPSPEC_BENCH_MAIN("p2_kernels");
