// Concurrency contract of QueryService (catalog/query_service.h): DDL takes
// the catalog's exclusive lock while DML and reads run under the shared
// lock, and each relation has a single writer (the network plane serializes
// per connection; the simulator's tenants own one relation each). This test
// drives that exact shape from many threads — per-thread writer relations,
// cross-thread readers, and a CREATE/DROP churn thread interleaving DDL
// with everyone's DML — and must come up clean under TSan (ctest -L server
// on the -DTEMPSPEC_SANITIZE=thread tree).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/query_service.h"
#include "testing.h"

namespace tempspec {
namespace {

constexpr int kWriters = 4;
constexpr int kOpsPerWriter = 40;
constexpr int kChurnRounds = 25;

std::string RelationName(int writer) {
  return "tenant_" + std::to_string(writer);
}

TEST(QueryServiceConcurrencyTest, MultiRelationDdlAndDmlInterleave) {
  QueryService service{QueryServiceOptions{}};
  ASSERT_OK(service.Open());
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_OK(service
                  .Execute("CREATE EVENT RELATION " + RelationName(w) +
                               " (sensor INT64 KEY, v DOUBLE) GRANULARITY 1s",
                           nullptr)
                  .status());
  }

  std::atomic<int> failures{0};
  std::atomic<bool> stop_churn{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string mine = RelationName(w);
      for (int op = 0; op < kOpsPerWriter; ++op) {
        // Single-writer DML on the thread's own relation.
        // Distinct valid second per op, so every insert is identifiable.
        const std::string insert =
            "INSERT INTO " + mine + " OBJECT " + std::to_string(op % 8 + 1) +
            " VALUES (" + std::to_string(op % 8 + 1) + ", " +
            std::to_string(op) + ".0) VALID AT '1992-02-03 10:00:" +
            (op % 60 < 10 ? "0" : "") + std::to_string(op % 60) + "'";
        if (!service.Execute(insert, nullptr).ok()) {
          failures.fetch_add(1);
          return;
        }
        // Cross-relation reads race against every other writer's DML and
        // the churn thread's DDL; they must succeed (the churn thread only
        // ever drops its own scratch relations).
        const std::string theirs = RelationName((w + 1 + op) % kWriters);
        Result<std::string> read = service.Execute("CURRENT " + theirs,
                                                   nullptr);
        if (!read.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (op % 7 == 0 &&
            !service.Execute("SHOW SPECIALIZATION " + mine, nullptr).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }

  std::thread churn([&] {
    for (int round = 0; round < kChurnRounds && !stop_churn.load(); ++round) {
      const std::string scratch = "scratch_" + std::to_string(round);
      if (!service
               .Execute("CREATE EVENT RELATION " + scratch +
                            " (k INT64 KEY, v DOUBLE) GRANULARITY 1s",
                        nullptr)
               .ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!service
               .Execute("INSERT INTO " + scratch +
                            " OBJECT 1 VALUES (1, 1.0) "
                            "VALID AT '1992-02-03 10:00:00'",
                        nullptr)
               .ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!service.Execute("DROP RELATION " + scratch, nullptr).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  for (std::thread& t : threads) t.join();
  stop_churn.store(true);
  churn.join();
  ASSERT_EQ(failures.load(), 0);

  // Every writer's relation holds exactly its own inserts, none of the
  // scratch relations survived, and the catalog is still fully usable.
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_OK_AND_ASSIGN(
        std::string state,
        service.Execute("CURRENT " + RelationName(w), nullptr));
    EXPECT_NE(state.find(std::to_string(kOpsPerWriter) + " element(s)"),
              std::string::npos)
        << RelationName(w) << ": " << state;
  }
  for (int round = 0; round < kChurnRounds; ++round) {
    EXPECT_FALSE(
        service.Execute("CURRENT scratch_" + std::to_string(round), nullptr)
            .ok());
  }
}

}  // namespace
}  // namespace tempspec
