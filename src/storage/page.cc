#include "storage/page.h"

namespace tempspec {

void SlottedPage::Init() {
  page_->Zero();
  WriteU16(0, 0);                                   // slot_count
  WriteU16(2, static_cast<uint16_t>(kPageSize));    // free_offset (record end)
}

size_t SlottedPage::FreeSpace() const {
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  const size_t free_offset = ReadU16(2) == 0 ? kPageSize : ReadU16(2);
  return free_offset > dir_end ? free_offset - dir_end : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotEntrySize) {
    return Status::InvalidArgument("record of ", record.size(),
                                   " bytes exceeds page capacity");
  }
  if (!Fits(record.size())) {
    return Status::OutOfRange("page full: need ", record.size() + kSlotEntrySize,
                              " bytes, have ", FreeSpace());
  }
  const uint16_t count = slot_count();
  const uint16_t free_offset = ReadU16(2) == 0 ? kPageSize : ReadU16(2);
  const uint16_t rec_offset = static_cast<uint16_t>(free_offset - record.size());
  std::memcpy(page_->data + rec_offset, record.data(), record.size());
  const size_t slot_pos = kHeaderSize + count * kSlotEntrySize;
  WriteU16(slot_pos, rec_offset);
  WriteU16(slot_pos + 2, static_cast<uint16_t>(record.size()));
  WriteU16(0, count + 1);
  WriteU16(2, rec_offset);
  return count;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::OutOfRange("slot ", slot, " out of range (", slot_count(),
                              " slots)");
  }
  const size_t slot_pos = kHeaderSize + slot * kSlotEntrySize;
  const uint16_t offset = ReadU16(slot_pos);
  const uint16_t len = ReadU16(slot_pos + 2);
  if (offset + len > kPageSize) {
    return Status::Corruption("slot ", slot, " points outside the page");
  }
  return std::string_view(page_->data + offset, len);
}

}  // namespace tempspec
