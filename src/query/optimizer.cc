#include "query/optimizer.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tempspec {

namespace {

/// \brief Counts the chosen strategy under optimizer.plan.<token>. Cached
/// handles per strategy so the per-plan cost is one relaxed atomic add.
void CountPlan(const PlanChoice& plan) {
  TS_FLIGHT(FlightCategory::kPlan, FlightCode::kPlanChoice, plan.strategy,
            plan.kernel, ExecutionStrategyToToken(plan.strategy));
#ifdef TEMPSPEC_METRICS
  static MetricCounter* const counters[] = {
      &MetricsRegistry::Instance().GetCounter(
          std::string("optimizer.plan.") +
          ExecutionStrategyToToken(ExecutionStrategy::kFullScan)),
      &MetricsRegistry::Instance().GetCounter(
          std::string("optimizer.plan.") +
          ExecutionStrategyToToken(ExecutionStrategy::kValidIndex)),
      &MetricsRegistry::Instance().GetCounter(
          std::string("optimizer.plan.") +
          ExecutionStrategyToToken(ExecutionStrategy::kTransactionWindow)),
      &MetricsRegistry::Instance().GetCounter(
          std::string("optimizer.plan.") +
          ExecutionStrategyToToken(ExecutionStrategy::kRollbackEquivalence)),
      &MetricsRegistry::Instance().GetCounter(
          std::string("optimizer.plan.") +
          ExecutionStrategyToToken(ExecutionStrategy::kMonotoneBinarySearch)),
  };
  const size_t i = static_cast<size_t>(plan.strategy);
  if (i < sizeof(counters) / sizeof(counters[0])) counters[i]->Increment();
#else
  (void)plan;
#endif
}

}  // namespace

Optimizer::Optimizer(const SpecializationSet& specs, const Schema& schema,
                     std::function<bool()> drifted)
    : specs_(specs), schema_(schema), drifted_(std::move(drifted)) {}

namespace {

bool IsFixedBand(const Band& b) {
  return (!b.lower() || b.lower()->offset.IsFixed()) &&
         (!b.upper() || b.upper()->offset.IsFixed());
}

}  // namespace

std::optional<Band> Optimizer::CombinedFixedBand() const {
  Band acc = Band::All();
  bool any = false;
  if (schema_.IsEventRelation()) {
    for (const auto& s : specs_.event_specs()) {
      if (s.anchor() != TransactionAnchor::kInsertion) continue;
      const Band& b = s.band();
      if (!IsFixedBand(b)) continue;  // calendric: window is anchor-dependent
      acc = acc.Intersect(b);
      any = any || !b.IsUnrestricted();
    }
  } else {
    // Interval relations: a match covers the queried instant, so
    // vt_b <= q < vt_e. A *lower* bound on vt_b - tt caps tt from above
    // (tt <= vt_b - lo_b <= q - lo_b), and an *upper* bound on vt_e - tt
    // caps it from below (tt >= vt_e - hi_e > q - hi_e). Combine the usable
    // half-bands into one effective band of "q - tt".
    for (const auto& a : specs_.anchored_specs()) {
      if (a.spec().anchor() != TransactionAnchor::kInsertion) continue;
      const Band& b = a.spec().band();
      if (!IsFixedBand(b)) continue;
      if (a.valid_anchor() != ValidAnchor::kEnd && b.lower()) {
        acc = acc.Intersect(Band::AtLeast(b.lower()->offset, b.lower()->open));
        any = true;
      }
      if (a.valid_anchor() != ValidAnchor::kBegin && b.upper()) {
        acc = acc.Intersect(Band::AtMost(b.upper()->offset, b.upper()->open));
        any = true;
      }
    }
  }
  if (!any || acc.IsUnrestricted()) return std::nullopt;
  return acc;
}

bool Optimizer::ValidTimesMonotone() const {
  for (const auto& o : specs_.orderings()) {
    if (o.scope() != SpecScope::kPerRelation) continue;
    if (o.kind() == OrderingKind::kNonDecreasing ||
        o.kind() == OrderingKind::kSequential) {
      return true;
    }
  }
  return false;
}

bool Optimizer::IsDegenerate() const {
  for (const auto& s : specs_.event_specs()) {
    if (s.kind() == EventSpecKind::kDegenerate &&
        s.anchor() == TransactionAnchor::kInsertion) {
      return true;
    }
  }
  return false;
}

namespace {

// The band constrains vt - tt to [lo, hi]; solving for tt over a valid-time
// query range [vlo, vhi] gives tt in [vlo - hi, vhi - lo]. Unbounded sides
// stay unbounded.
TimeInterval WindowFromBand(const Band& band, TimePoint vlo, TimePoint vhi) {
  TimePoint tlo = TimePoint::Min();
  TimePoint thi = TimePoint::Max();
  if (band.upper()) tlo = vlo - band.upper()->offset;
  if (band.lower()) thi = vhi - band.lower()->offset;
  // Window is inclusive of thi; TimeInterval is half-open, so bump by one
  // chronon when finite.
  if (!thi.IsMax()) thi = TimePoint::FromMicros(thi.micros() + 1);
  return TimeInterval(tlo, thi);
}

}  // namespace

PlanChoice Optimizer::PlanTimeslice(TimePoint vt) const {
  return PlanValidRange(vt, TimePoint::FromMicros(vt.micros() + 1));
}

PlanChoice Optimizer::PlanValidRange(TimePoint lo, TimePoint hi) const {
  PlanChoice plan;
  const TimePoint hi_incl = TimePoint::FromMicros(hi.micros() - 1);

  // A DRIFTED relation declared a band its workload has escaped; the
  // declaration is no longer a sound basis for a specialized strategy or
  // kernel, so plan as if nothing were declared. (Enforcement keeps the
  // extension itself clean, so this is conservative, not required for
  // correctness — but a plan justified by a violated declaration is a lie.)
  if (drifted_ && drifted_()) {
    plan.strategy = ExecutionStrategy::kValidIndex;
    plan.kernel = ScanKernel::kRowAtATime;
    plan.rationale =
        "drift monitor reports DRIFTED: declared specialization ignored; "
        "valid-time interval index probe";
    CountPlan(plan);
    return plan;
  }

  if (IsDegenerate()) {
    // vt = tt within the granularity: matches can only have been stored in
    // the granules covering the queried valid range.
    const Granularity g = schema_.valid_granularity();
    plan.strategy = ExecutionStrategy::kRollbackEquivalence;
    plan.kernel = ScanKernel::kDegenerate;
    plan.tt_window = TimeInterval(g.Truncate(lo), g.NextGranule(hi_incl));
    plan.rationale =
        "degenerate relation: valid time equals transaction time within "
        "granularity " + g.ToString() + "; timeslice answered as rollback";
    CountPlan(plan);
    return plan;
  }

  if (auto band = CombinedFixedBand()) {
    plan.strategy = ExecutionStrategy::kTransactionWindow;
    // Event relations derive vt_end, so the banded kernel reads one vt
    // column; interval stamps need both — the generic columnar predicate.
    plan.kernel = schema_.IsEventRelation() ? ScanKernel::kBanded
                                            : ScanKernel::kGeneric;
    plan.tt_window = WindowFromBand(*band, lo, hi_incl);
    plan.rationale = "declared band " + band->ToString() +
                     " bounds the storage delay; scanning tt window " +
                     plan.tt_window.ToString();
    CountPlan(plan);
    return plan;
  }

  if (schema_.IsEventRelation() && ValidTimesMonotone()) {
    plan.strategy = ExecutionStrategy::kMonotoneBinarySearch;
    plan.kernel = ScanKernel::kMonotone;
    plan.rationale =
        "non-decreasing/sequential relation: valid times are sorted in "
        "insertion order; binary search";
    CountPlan(plan);
    return plan;
  }

  plan.strategy = ExecutionStrategy::kValidIndex;
  plan.kernel = ScanKernel::kRowAtATime;  // probe results are non-contiguous
  plan.rationale = "general relation: valid-time interval index probe";
  CountPlan(plan);
  return plan;
}

}  // namespace tempspec
