// E4 — Bounded types narrow the transaction-time window a timeslice must
// inspect (Section 3.1's bounded family).
//
// Fixed relation size; the declared bound Δt sweeps from 1 minute to 1 day.
// The specialized strategy scans only tt in [vt+Δt_min, vt+Δt_max]; expect
// query cost to grow with Δt and to cross over toward the full scan as the
// band covers the whole relation.
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::FullScanPlan;
using tempspec::bench::Require;

namespace {

constexpr int64_t kElements = 32768;

ScenarioRelation MakeBounded(Duration max_delay) {
  ScenarioRelation out;
  out.clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(0),
                                             Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Require(Schema::Make("sampled",
                           {AttributeDef{"src", ValueType::kInt64,
                                         AttributeRole::kTimeInvariantKey}},
                           ValidTimeKind::kEvent, Granularity::Second()));
  options.specializations.AddEvent(
      Require(EventSpecialization::RetroactivelyBounded(max_delay)));
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  options.clock = out.clock;
  out.relation = Require(TemporalRelation::Open(std::move(options)));

  Random rng(13);
  const int64_t max_us = max_delay.micros();
  for (int64_t i = 0; i < kElements; ++i) {
    out.clock->SetTo(TimePoint::FromSeconds(i * 30));
    const TimePoint tt = out.clock->Peek();
    const int64_t delay = rng.Uniform(0, max_us - kMicrosPerSecond);
    Require(out.relation
                ->InsertEvent(i % 16, tt - Duration::Micros(delay),
                              Tuple{int64_t{i % 16}})
                .status());
  }
  return out;
}

void BM_Timeslice_BoundSweep(benchmark::State& state) {
  const Duration bound = Duration::Minutes(state.range(0));
  ScenarioRelation scenario = MakeBounded(bound);
  QueryExecutor exec(*scenario.relation);
  QueryStats stats;
  size_t i = 0;
  for (auto _ : state) {
    const Element& probe = scenario->elements()[(i * 199) % scenario->size()];
    ++i;
    auto result = exec.Timeslice(probe.valid.at(), &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["bound_minutes"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["elements_examined_per_query"] = benchmark::Counter(
      static_cast<double>(stats.elements_examined) / state.iterations());
}

void BM_Timeslice_BoundSweep_ScanBaseline(benchmark::State& state) {
  ScenarioRelation scenario = MakeBounded(Duration::Minutes(state.range(0)));
  QueryExecutor exec(*scenario.relation);
  QueryStats stats;
  size_t i = 0;
  for (auto _ : state) {
    const Element& probe = scenario->elements()[(i * 199) % scenario->size()];
    ++i;
    auto result = exec.TimesliceWith(FullScanPlan(), probe.valid.at(), &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["elements_examined_per_query"] = benchmark::Counter(
      static_cast<double>(stats.elements_examined) / state.iterations());
}

}  // namespace

// Δt = 1 min .. 1 day (1440 min); elements arrive every 30s.
BENCHMARK(BM_Timeslice_BoundSweep)->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1440);
BENCHMARK(BM_Timeslice_BoundSweep_ScanBaseline)->Arg(1)->Arg(1440);

TEMPSPEC_BENCH_MAIN("e4_bounded");
