// Duration: the Δt bounds of the taxonomy.
//
// Section 3.1: "this time bound is a duration that may be fixed in length
// (e.g., 30 seconds, one day) or may be calendric-specific", e.g. one month,
// whose absolute length depends on the instant it is applied to. A Duration
// therefore carries a calendar-month component plus a fixed microsecond
// component, and is *applied to* a TimePoint rather than converted to a
// number.
#ifndef TEMPSPEC_TIMEX_DURATION_H_
#define TEMPSPEC_TIMEX_DURATION_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "timex/calendar.h"
#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief A signed span of time: `months` calendar months plus `micros`
/// microseconds, applied in that order.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t n) { return Duration(0, n); }
  static constexpr Duration Millis(int64_t n) { return Duration(0, n * 1000); }
  static constexpr Duration Seconds(int64_t n) {
    return Duration(0, n * kMicrosPerSecond);
  }
  static constexpr Duration Minutes(int64_t n) {
    return Duration(0, n * kMicrosPerMinute);
  }
  static constexpr Duration Hours(int64_t n) { return Duration(0, n * kMicrosPerHour); }
  static constexpr Duration Days(int64_t n) { return Duration(0, n * kMicrosPerDay); }
  static constexpr Duration Weeks(int64_t n) { return Duration(0, n * kMicrosPerWeek); }
  /// \brief Calendric months: 1992-01-31 + Months(1) = 1992-02-29.
  static constexpr Duration Months(int64_t n) { return Duration(n, 0); }
  static constexpr Duration Years(int64_t n) { return Duration(n * 12, 0); }
  static constexpr Duration Zero() { return Duration(); }

  constexpr int64_t months() const { return months_; }
  constexpr int64_t micros() const { return micros_; }

  /// \brief True if the duration has no calendric component and can therefore
  /// be treated as a fixed number of chronons.
  constexpr bool IsFixed() const { return months_ == 0; }
  constexpr bool IsZero() const { return months_ == 0 && micros_ == 0; }

  /// \brief Sign assuming both components agree or one is zero; mixed-sign
  /// durations are compared by their effect on the epoch.
  bool IsNegative() const;
  bool IsPositive() const { return !IsZero() && !IsNegative(); }

  constexpr Duration operator-() const { return Duration(-months_, -micros_); }
  constexpr Duration operator+(Duration other) const {
    return Duration(months_ + other.months_, micros_ + other.micros_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(months_ - other.months_, micros_ - other.micros_);
  }
  constexpr Duration operator*(int64_t k) const {
    return Duration(months_ * k, micros_ * k);
  }

  friend constexpr bool operator==(Duration a, Duration b) = default;

  /// \brief e.g. "2mo+3d", "30s", "0".
  std::string ToString() const;

  /// \brief Parses "30s", "5min", "2h", "3d", "1w", "1mo", "2y", "250ms",
  /// "10us", and +-separated combinations like "1mo+2d". Signs allowed.
  static Result<Duration> Parse(const std::string& text);

 private:
  constexpr Duration(int64_t months, int64_t micros)
      : months_(months), micros_(micros) {}

  int64_t months_ = 0;
  int64_t micros_ = 0;
};

/// \brief Applies a duration to an instant: months first (day-clamped), then
/// the fixed component. Sentinel instants are absorbing.
TimePoint AddDuration(TimePoint tp, Duration d);

inline TimePoint operator+(TimePoint tp, Duration d) { return AddDuration(tp, d); }
inline TimePoint operator-(TimePoint tp, Duration d) { return AddDuration(tp, -d); }

/// \brief Fixed-duration difference between two instants (no calendric part).
inline Duration operator-(TimePoint a, TimePoint b) {
  return Duration::Micros(a.MicrosSince(b));
}

std::ostream& operator<<(std::ostream& os, Duration d);

}  // namespace tempspec

#endif  // TEMPSPEC_TIMEX_DURATION_H_
