// Crash harness for the daemon binary itself (tools/tempspec_serve, path
// injected as TEMPSPEC_SERVE_BIN): SIGKILL the server mid-load at seeded
// points and assert that a restart on the same data directory recovers
// every acknowledged insert through the WAL; then die by SIGABRT with
// TEMPSPEC_FLIGHT_DUMP set and assert the fatal-signal flight-recorder dump
// exists and passes tools/check_flight_json.py. This is the only test that
// exercises the shipped binary end to end — process boundary, signals,
// recovery and all.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "net/net_test_client.h"
#include "testing.h"

#ifndef TEMPSPEC_SERVE_BIN
#error "build injects TEMPSPEC_SERVE_BIN=$<TARGET_FILE:tempspec_serve>"
#endif
#ifndef TEMPSPEC_TOOLS_DIR
#error "build injects TEMPSPEC_TOOLS_DIR=<source>/tools"
#endif

namespace tempspec {
namespace {

using testing::TestClient;
using testing::WaitFor;

/// One spawned daemon process bound to an ephemeral port.
class ServeProcess {
 public:
  /// Starts tempspec_serve on `data_dir`; extra environment entries are
  /// "KEY=VALUE" strings applied in the child only.
  bool Start(const std::string& data_dir,
             const std::vector<std::string>& extra_env = {}) {
    portfile_ = data_dir + "/.portfile";
    std::remove(portfile_.c_str());
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      for (const std::string& kv : extra_env) {
        const size_t eq = kv.find('=');
        ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
      }
      const std::string port_arg = "--portfile=" + portfile_;
      const std::string data_arg = "--data-dir=" + data_dir;
      ::execl(TEMPSPEC_SERVE_BIN, TEMPSPEC_SERVE_BIN, "--port=0",
              data_arg.c_str(), port_arg.c_str(), nullptr);
      _exit(127);  // exec failed
    }
    // Parent: wait for the port file (the daemon writes it after binding).
    const bool bound = WaitFor([this] {
      std::ifstream in(portfile_);
      int port = 0;
      return static_cast<bool>(in >> port) && port > 0;
    });
    if (!bound) return false;
    std::ifstream in(portfile_);
    in >> port_;
    return port_ > 0;
  }

  uint16_t port() const { return static_cast<uint16_t>(port_); }
  pid_t pid() const { return pid_; }

  /// Sends `signo` and reaps the child.
  void KillAndReap(int signo) {
    if (pid_ <= 0) return;
    ::kill(pid_, signo);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }

  /// Reaps without signalling (the child died on its own).
  int Reap() {
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
    return wstatus;
  }

  ~ServeProcess() {
    if (pid_ > 0) KillAndReap(SIGKILL);
  }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  std::string portfile_;
};

std::string MakeTempDir() {
  char pattern[] = "/tmp/tempspec_crash_XXXXXX";
  const char* dir = ::mkdtemp(pattern);
  return dir == nullptr ? "" : dir;
}

/// Extracts N from a body containing "N element(s)"; -1 when absent.
int ElementCount(const std::string& body) {
  const size_t at = body.find(" element(s)");
  if (at == std::string::npos) return -1;
  size_t start = at;
  while (start > 0 && std::isdigit(static_cast<unsigned char>(body[start - 1]))) {
    --start;
  }
  if (start == at) return -1;
  return std::atoi(body.substr(start, at - start).c_str());
}

std::string InsertStatement(int i) {
  return "INSERT INTO crashed OBJECT 1 VALUES (1, " + std::to_string(i) +
         ".0) VALID AT '1992-02-03 10:00:00'";
}

TEST(ServerCrashTest, SigkillMidLoadRecoversEveryAcknowledgedInsert) {
  // Seeded kill points: the daemon dies the instant the Nth insert is
  // acknowledged. The WAL reaches the kernel (write(2)) before each ack, so
  // SIGKILL — which loses only user-space state — must never lose an acked
  // insert. Each iteration continues on the same data dir, so recovery is
  // also re-entrant: recover, load more, die again, recover again.
  const std::string data_dir = MakeTempDir();
  ASSERT_FALSE(data_dir.empty());

  int acked = 0;
  bool created = false;
  for (const int kill_after : {7, 23, 41}) {
    ServeProcess serve;
    ASSERT_TRUE(serve.Start(data_dir)) << "daemon failed to start";
    TestClient client(serve.port());
    ASSERT_TRUE(client.connected());

    if (!created) {
      TestClient::HttpReply reply = client.PostQuery(
          "CREATE EVENT RELATION crashed (sensor INT64 KEY, v DOUBLE) "
          "GRANULARITY 1s");
      ASSERT_EQ(reply.code, 200) << reply.body;
      created = true;
    } else {
      // The previous kill must not have lost anything that was acked.
      TestClient::HttpReply recovered = client.PostQuery("CURRENT crashed");
      ASSERT_EQ(recovered.code, 200) << recovered.body;
      EXPECT_GE(ElementCount(recovered.body), acked)
          << "recovery lost acknowledged inserts: " << recovered.body;
    }

    for (int i = 0; i < kill_after; ++i) {
      TestClient::HttpReply reply = client.PostQuery(InsertStatement(acked));
      ASSERT_EQ(reply.code, 200) << reply.body;
      ++acked;
    }
    serve.KillAndReap(SIGKILL);
  }

  // Final restart: everything ever acked is present and the daemon is fully
  // operational afterwards (reads and writes).
  ServeProcess serve;
  ASSERT_TRUE(serve.Start(data_dir));
  TestClient client(serve.port());
  TestClient::HttpReply reply = client.PostQuery("CURRENT crashed");
  ASSERT_EQ(reply.code, 200) << reply.body;
  EXPECT_GE(ElementCount(reply.body), acked) << reply.body;
  EXPECT_EQ(client.PostQuery(InsertStatement(acked)).code, 200);
  serve.KillAndReap(SIGTERM);
}

TEST(ServerCrashTest, FatalSignalDumpsFlightRecorderThatValidates) {
  const std::string data_dir = MakeTempDir();
  ASSERT_FALSE(data_dir.empty());
  const std::string dump_path = data_dir + "/flight.jsonl";

  ServeProcess serve;
  ASSERT_TRUE(
      serve.Start(data_dir, {"TEMPSPEC_FLIGHT_DUMP=" + dump_path}));
  TestClient client(serve.port());
  ASSERT_TRUE(client.connected());
  ASSERT_EQ(client
                .PostQuery(
                    "CREATE EVENT RELATION doomed (sensor INT64 KEY, "
                    "v DOUBLE) GRANULARITY 1s")
                .code,
            200);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(client
                  .PostQuery("INSERT INTO doomed OBJECT 1 VALUES (1, " +
                             std::to_string(i) +
                             ".0) VALID AT '1992-02-03 10:00:00'")
                  .code,
              200);
  }

  ::kill(serve.pid(), SIGABRT);
  const int wstatus = serve.Reap();
  // The handler dumps, then re-raises: the process must have died by the
  // original signal, not exited cleanly.
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGABRT);

  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "no flight dump at " << dump_path;
  std::string first_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(dump, first_line)));
  EXPECT_NE(first_line.find("\"seq\""), std::string::npos) << first_line;

  // The dump must satisfy the shared JSONL schema — same gate CI applies.
  const std::string check = std::string("python3 ") + TEMPSPEC_TOOLS_DIR +
                            "/check_flight_json.py --min-events 1 " +
                            dump_path;
  EXPECT_EQ(std::system(check.c_str()), 0) << check;
}

}  // namespace
}  // namespace tempspec
