// Proleptic-Gregorian civil calendar arithmetic.
//
// The paper's bounds may be "calendric-specific", e.g. one month, whose length
// in days depends on the date it is applied to (Section 3.1). Supporting such
// bounds requires real calendar arithmetic; the conversions here follow the
// well-known Howard Hinnant civil-date algorithms.
#ifndef TEMPSPEC_TIMEX_CALENDAR_H_
#define TEMPSPEC_TIMEX_CALENDAR_H_

#include <cstdint>
#include <string>

#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief Broken-down UTC date-time.
struct CivilDateTime {
  int32_t year = 1970;
  int32_t month = 1;  // 1..12
  int32_t day = 1;    // 1..31
  int32_t hour = 0;
  int32_t minute = 0;
  int32_t second = 0;
  int32_t micro = 0;

  friend bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

/// \brief Days since 1970-01-01 for the given civil date (proleptic Gregorian).
int64_t DaysFromCivil(int32_t year, int32_t month, int32_t day);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int32_t* year, int32_t* month, int32_t* day);

/// \brief True for Gregorian leap years.
bool IsLeapYear(int32_t year);

/// \brief Number of days in the given month (1..12).
int32_t DaysInMonth(int32_t year, int32_t month);

/// \brief Breaks a TimePoint into civil UTC fields. Sentinels are not allowed.
CivilDateTime ToCivil(TimePoint tp);

/// \brief Builds a TimePoint from civil UTC fields (fields must be in range).
TimePoint FromCivil(const CivilDateTime& c);

/// \brief Adds `months` calendar months, clamping the day-of-month to the
/// target month's length (1992-01-31 + 1 month = 1992-02-29).
TimePoint AddMonths(TimePoint tp, int64_t months);

/// \brief Whole calendar months from `from` to `to` (floor), the inverse
/// notion used when checking calendric bounds.
int64_t WholeMonthsBetween(TimePoint from, TimePoint to);

/// \brief Parses "YYYY-MM-DD[ HH:MM[:SS[.ffffff]]]" (UTC).
Result<TimePoint> ParseTimePoint(const std::string& text);

/// \brief Formats as "YYYY-MM-DD HH:MM:SS.ffffff".
std::string FormatTimePoint(TimePoint tp);

}  // namespace tempspec

#endif  // TEMPSPEC_TIMEX_CALENDAR_H_
