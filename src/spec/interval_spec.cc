#include "spec/interval_spec.h"

namespace tempspec {

const char* ValidAnchorToString(ValidAnchor anchor) {
  switch (anchor) {
    case ValidAnchor::kBegin:
      return "vt_b";
    case ValidAnchor::kEnd:
      return "vt_e";
    case ValidAnchor::kBoth:
      return "vt_b&vt_e";
  }
  return "?";
}

namespace {

Status CheckEndpoint(const EventSpecialization& spec, const Element& e,
                     TimePoint endpoint, const char* endpoint_name,
                     Granularity granularity) {
  const TimePoint tt = AnchoredTransactionTime(e, spec.anchor());
  if (spec.anchor() == TransactionAnchor::kDeletion && tt.IsMax()) {
    return Status::OK();
  }
  if (spec.mapping()) {
    const TimePoint expected = spec.mapping()->Apply(e);
    if (endpoint != expected) {
      return Status::ConstraintViolation(
          endpoint_name, "-determined violated: ", endpoint.ToString(),
          " differs from ", spec.mapping()->ToString(), " = ",
          expected.ToString());
    }
  }
  if (spec.kind() == EventSpecKind::kDegenerate) {
    if (!granularity.Same(tt, endpoint)) {
      return Status::ConstraintViolation(
          endpoint_name, "-degenerate violated: ", endpoint.ToString(),
          " and tt ", tt.ToString(), " differ beyond granularity ",
          granularity.ToString());
    }
    return Status::OK();
  }
  if (!spec.Satisfies(tt, endpoint)) {
    return Status::ConstraintViolation(
        endpoint_name, "-", EventSpecKindToString(spec.kind()),
        " violated: ", endpoint.ToString(), " escapes band ",
        spec.band().ToString(), " at ", TransactionAnchorToString(spec.anchor()),
        " time ", tt.ToString(), " for element #", e.element_surrogate);
  }
  return Status::OK();
}

}  // namespace

Status AnchoredEventSpec::CheckElement(const Element& e,
                                       Granularity granularity) const {
  if (!e.valid.is_interval()) {
    return Status::InvalidArgument(
        "anchored event specialization requires interval-stamped elements");
  }
  if (valid_anchor_ == ValidAnchor::kBegin || valid_anchor_ == ValidAnchor::kBoth) {
    TS_RETURN_NOT_OK(
        CheckEndpoint(spec_, e, e.valid.begin(), "vt_b", granularity));
  }
  if (valid_anchor_ == ValidAnchor::kEnd || valid_anchor_ == ValidAnchor::kBoth) {
    TS_RETURN_NOT_OK(CheckEndpoint(spec_, e, e.valid.end(), "vt_e", granularity));
  }
  return Status::OK();
}

std::string AnchoredEventSpec::ToString() const {
  std::string out = ValidAnchorToString(valid_anchor_);
  out += "-";
  out += spec_.ToString();
  return out;
}

const char* IntervalRegularityDimensionToString(IntervalRegularityDimension dim) {
  switch (dim) {
    case IntervalRegularityDimension::kTransactionTime:
      return "transaction time";
    case IntervalRegularityDimension::kValidTime:
      return "valid time";
    case IntervalRegularityDimension::kTemporal:
      return "temporal";
  }
  return "unknown";
}

Result<IntervalRegularitySpec> IntervalRegularitySpec::Make(
    IntervalRegularityDimension dim, Duration unit, bool strict, SpecScope scope) {
  if (!unit.IsPositive()) {
    return Status::InvalidArgument(
        "interval regularity time unit must be positive, got ", unit.ToString());
  }
  return IntervalRegularitySpec(dim, unit, strict, scope);
}

Status IntervalRegularitySpec::CheckElement(const Element& e) const {
  auto check_duration = [&](TimePoint from, TimePoint to,
                            const char* what) -> Status {
    const auto k = UnitMultiplier(from, to, unit_);
    if (!k || *k < 0) {
      return Status::ConstraintViolation(
          ToString(), " violated: ", what, " duration from ", from.ToString(),
          " to ", to.ToString(), " is not a non-negative multiple of ",
          unit_.ToString());
    }
    if (strict_ && *k != 1) {
      return Status::ConstraintViolation(
          ToString(), " violated: ", what, " duration is ", *k,
          " units, expected exactly 1");
    }
    return Status::OK();
  };

  const bool check_tt = dim_ != IntervalRegularityDimension::kValidTime;
  const bool check_vt = dim_ != IntervalRegularityDimension::kTransactionTime;

  if (check_tt && !e.tt_end.IsMax()) {
    TS_RETURN_NOT_OK(check_duration(e.tt_begin, e.tt_end, "existence"));
  }
  if (check_vt) {
    if (!e.valid.is_interval()) {
      return Status::InvalidArgument(
          "valid-time interval regularity requires interval-stamped elements");
    }
    TS_RETURN_NOT_OK(check_duration(e.valid.begin(), e.valid.end(), "valid"));
  }
  return Status::OK();
}

Status IntervalRegularitySpec::CheckExtension(
    std::span<const Element> elements) const {
  for (const Element& e : elements) {
    TS_RETURN_NOT_OK(CheckElement(e));
  }
  return Status::OK();
}

std::string IntervalRegularitySpec::ToString() const {
  std::string out;
  if (strict_) out += "strict ";
  out += IntervalRegularityDimensionToString(dim_);
  out += " interval regular(";
  out += unit_.ToString();
  out += ")";
  return out;
}

}  // namespace tempspec
