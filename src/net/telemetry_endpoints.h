// The telemetry endpoint set, registered onto any NetServer: one network
// stack serves both the query plane and the observability plane.
//
//   /metrics       — Prometheus text exposition of the metrics registry
//   /varz          — {"build":..., "metrics":...} JSON snapshot
//   /healthz       — "ok" liveness probe
//   /debug/events  — the flight-recorder ring as JSONL
//   /debug/traces  — the retained trace spans as JSONL
//
// Handlers run on the event-loop thread and only snapshot in-process
// registries, so they stay responsive even when every worker is busy —
// telemetry never passes through admission control.
#ifndef TEMPSPEC_NET_TELEMETRY_ENDPOINTS_H_
#define TEMPSPEC_NET_TELEMETRY_ENDPOINTS_H_

#include "net/server.h"

namespace tempspec {

/// \brief Registers the telemetry endpoints above. Call before Start().
void RegisterTelemetryEndpoints(NetServer* server);

}  // namespace tempspec

#endif  // TEMPSPEC_NET_TELEMETRY_ENDPOINTS_H_
