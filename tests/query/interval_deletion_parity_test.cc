// Differential test: zero-copy ResultSet paths vs materializing adapters vs
// a brute-force reference, on an *interval* relation under logical deletions
// and modifications. The deletion-heavy history matters: every query path
// must apply the IsCurrent() belief filter identically, and interval overlap
// (begin <= vt < end) has edge cases an event relation never exercises.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "query/executor.h"
#include "relation/temporal_relation.h"
#include "testing.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tempspec {
namespace {

using testing::T;

bool SameElement(const Element& a, const Element& b) {
  return a.element_surrogate == b.element_surrogate &&
         a.object_surrogate == b.object_surrogate && a.tt_begin == b.tt_begin &&
         a.tt_end == b.tt_end && a.valid == b.valid &&
         a.attributes == b.attributes;
}

// An interval relation whose history is ~55% inserts, ~30% deletes, ~15%
// modifications, leaving plenty of logically-deleted elements interleaved
// with current ones.
std::unique_ptr<TemporalRelation> BuildDeletionHeavyIntervalRelation(
    uint64_t seed, size_t num_ops) {
  RelationOptions options;
  options.schema =
      Schema::Make("interval_del",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Second())
          .ValueOrDie();
  options.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();

  Random rng(seed);
  std::vector<ElementSurrogate> live;
  for (size_t i = 0; i < num_ops; ++i) {
    const double dice = rng.NextDouble();
    if (!live.empty() && dice < 0.30) {
      const size_t v = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      EXPECT_TRUE(rel->LogicalDelete(live[v]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(v));
      continue;
    }
    const TimePoint vb = T(rng.Uniform(0, 5000));
    const TimePoint ve = vb + Duration::Seconds(rng.Uniform(1, 400));
    if (!live.empty() && dice < 0.45) {
      const size_t v = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      auto modified = rel->Modify(live[v], ValidTime::IntervalUnchecked(vb, ve),
                                  Tuple{static_cast<int64_t>(i)});
      EXPECT_TRUE(modified.ok()) << modified.status().ToString();
      live[v] = modified.ValueOrDie();
    } else {
      auto inserted = rel->InsertInterval(static_cast<ObjectSurrogate>(i % 9 + 1),
                                          vb, ve, Tuple{static_cast<int64_t>(i)});
      EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
      live.push_back(inserted.ValueOrDie());
    }
  }
  return rel;
}

std::vector<uint64_t> BruteTimeslice(const TemporalRelation& rel, TimePoint vt) {
  std::vector<uint64_t> out;
  const auto elements = rel.elements();
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    if (!e.IsCurrent()) continue;
    if (e.valid.begin() <= vt && vt < e.valid.end()) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> BruteValidRange(const TemporalRelation& rel, TimePoint lo,
                                      TimePoint hi) {
  std::vector<uint64_t> out;
  const auto elements = rel.elements();
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    if (!e.IsCurrent()) continue;
    if (e.valid.begin() < hi && lo < e.valid.end()) out.push_back(i);
  }
  return out;
}

void ExpectSetMatchesAdapter(const QueryExecutor& exec, const ResultSet& set,
                             const std::vector<Element>& adapter,
                             const char* what) {
  (void)exec;
  const std::vector<Element> materialized = set.Materialize();
  ASSERT_EQ(materialized.size(), adapter.size()) << what;
  for (size_t i = 0; i < adapter.size(); ++i) {
    ASSERT_TRUE(SameElement(materialized[i], adapter[i])) << what << " #" << i;
    ASSERT_TRUE(SameElement(set[i], adapter[i])) << what << " view #" << i;
  }
}

TEST(IntervalDeletionParityTest, AllPathsAgreeUnderDeletions) {
  auto rel = BuildDeletionHeavyIntervalRelation(4242, 1400);
  size_t deleted = 0;
  for (const Element& e : rel->elements()) deleted += e.IsCurrent() ? 0 : 1;
  ASSERT_GT(deleted, 100u) << "workload produced too few deletions to test";

  ThreadPool pool(4);
  const QueryExecutor serial(*rel, ExecutorOptions{.pool = nullptr});
  const QueryExecutor tiny(*rel, ExecutorOptions{.pool = &pool,
                                                 .morsel_size = 53,
                                                 .parallel_cutoff = 1});

  Random rng(99);
  const auto elements = rel->elements();
  for (int trial = 0; trial < 32; ++trial) {
    const Element& probe = elements[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(elements.size()) - 1))];
    // Probe interval endpoints exactly: begin is inclusive, end exclusive.
    const TimePoint points[] = {
        probe.valid.begin(), probe.valid.end(),
        probe.valid.begin() + Duration::Seconds(rng.Uniform(0, 300))};
    for (const TimePoint vt : points) {
      SCOPED_TRACE("vt=" + vt.ToString());
      const std::vector<uint64_t> brute = BruteTimeslice(*rel, vt);
      const std::vector<PlanChoice> plans = {
          PlanChoice{ExecutionStrategy::kFullScan, TimeInterval::All(), ""},
          PlanChoice{ExecutionStrategy::kValidIndex, TimeInterval::All(), ""},
          serial.optimizer().PlanTimeslice(vt),
      };
      for (const PlanChoice& plan : plans) {
        const char* what = ExecutionStrategyToString(plan.strategy);
        const ResultSet s = serial.TimesliceSetWith(plan, vt);
        const ResultSet p = tiny.TimesliceSetWith(plan, vt);
        ASSERT_EQ(s.positions(), brute) << what;
        ASSERT_EQ(p.positions(), brute) << what;
        ExpectSetMatchesAdapter(serial, s, serial.TimesliceWith(plan, vt), what);
        ExpectSetMatchesAdapter(tiny, p, tiny.TimesliceWith(plan, vt), what);
      }
      // Planner-chosen paths end to end.
      ASSERT_EQ(serial.TimesliceSet(vt).positions(), brute);
      ASSERT_EQ(tiny.TimesliceSet(vt).positions(), brute);
      ExpectSetMatchesAdapter(serial, serial.TimesliceSet(vt),
                              serial.Timeslice(vt), "planned");
    }

    const TimePoint lo = probe.valid.begin();
    const TimePoint hi = probe.valid.end() + Duration::Seconds(rng.Uniform(0, 500));
    SCOPED_TRACE("range=[" + lo.ToString() + "," + hi.ToString() + ")");
    const std::vector<uint64_t> brute_range = BruteValidRange(*rel, lo, hi);
    ASSERT_EQ(serial.ValidRangeSet(lo, hi).positions(), brute_range);
    ASSERT_EQ(tiny.ValidRangeSet(lo, hi).positions(), brute_range);
    ExpectSetMatchesAdapter(serial, serial.ValidRangeSet(lo, hi),
                            serial.ValidRange(lo, hi), "valid-range");
    ExpectSetMatchesAdapter(tiny, tiny.ValidRangeSet(lo, hi),
                            tiny.ValidRange(lo, hi), "valid-range-parallel");
  }

  // Current state: the belief filter alone, against a manual count.
  size_t current = 0;
  for (const Element& e : rel->elements()) current += e.IsCurrent() ? 1 : 0;
  ASSERT_EQ(serial.CurrentSet().size(), current);
  ASSERT_EQ(tiny.CurrentSet().size(), current);
}

}  // namespace
}  // namespace tempspec
