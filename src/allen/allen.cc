#include "allen/allen.h"

#include "util/string_util.h"

namespace tempspec {

const std::array<AllenRelation, kNumAllenRelations>& AllAllenRelations() {
  static const std::array<AllenRelation, kNumAllenRelations> kAll = {
      AllenRelation::kBefore,       AllenRelation::kMeets,
      AllenRelation::kOverlaps,     AllenRelation::kStarts,
      AllenRelation::kDuring,       AllenRelation::kFinishes,
      AllenRelation::kEquals,       AllenRelation::kAfter,
      AllenRelation::kMetBy,        AllenRelation::kOverlappedBy,
      AllenRelation::kStartedBy,    AllenRelation::kContains,
      AllenRelation::kFinishedBy,
  };
  return kAll;
}

const char* AllenRelationToString(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kAfter:
      return "after";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kFinishedBy:
      return "finished-by";
  }
  return "unknown";
}

Result<AllenRelation> ParseAllenRelation(const std::string& name) {
  const std::string s = ToLower(std::string(Trim(name)));
  for (AllenRelation rel : AllAllenRelations()) {
    if (s == AllenRelationToString(rel)) return rel;
  }
  // Aliases used in the paper: "equal", "inverse X".
  if (s == "equal") return AllenRelation::kEquals;
  if (StartsWith(s, "inverse ")) {
    TS_ASSIGN_OR_RETURN(AllenRelation base, ParseAllenRelation(s.substr(8)));
    return Inverse(base);
  }
  return Status::InvalidArgument("unknown Allen relation: '", name, "'");
}

AllenRelation Inverse(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
  }
  return AllenRelation::kEquals;
}

Result<AllenRelation> Classify(const TimeInterval& x, const TimeInterval& y) {
  if (x.IsEmpty() || y.IsEmpty()) {
    return Status::InvalidArgument(
        "Allen relations are defined on non-empty intervals");
  }
  const TimePoint xb = x.begin(), xe = x.end(), yb = y.begin(), ye = y.end();
  if (xe < yb) return AllenRelation::kBefore;
  if (xe == yb) return AllenRelation::kMeets;
  if (yb < xb) {
    TS_ASSIGN_OR_RETURN(AllenRelation inv, Classify(y, x));
    return Inverse(inv);
  }
  // From here xb <= yb and xe > yb (they intersect) and not met.
  if (xb == yb) {
    if (xe == ye) return AllenRelation::kEquals;
    return xe < ye ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  // xb < yb.
  if (xe < ye) return AllenRelation::kOverlaps;
  if (xe == ye) return AllenRelation::kFinishedBy;
  return AllenRelation::kContains;
}

bool Holds(AllenRelation rel, const TimeInterval& x, const TimeInterval& y) {
  auto classified = Classify(x, y);
  return classified.ok() && classified.ValueOrDie() == rel;
}

}  // namespace tempspec
