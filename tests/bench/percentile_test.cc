// Edge cases for the shared percentile implementation (bench/percentile.h):
// the one the bench --json capture, bench_p3_server, and the traffic
// simulator all report latency distributions through. The hand-rolled
// copies this replaced disagreed exactly on these inputs.
#include "bench/percentile.h"

#include <gtest/gtest.h>

#include <vector>

namespace tempspec {
namespace bench {
namespace {

TEST(SamplePercentileTest, EmptySampleIsZeroNotUb) {
  EXPECT_EQ(SamplePercentile({}, 0.0), 0.0);
  EXPECT_EQ(SamplePercentile({}, 0.5), 0.0);
  EXPECT_EQ(SamplePercentile({}, 0.99), 0.0);
  EXPECT_EQ(SamplePercentile({}, 1.0), 0.0);
}

TEST(SamplePercentileTest, SingleSampleIsEveryPercentileOfItself) {
  for (double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(SamplePercentile({42.5}, p), 42.5) << "p=" << p;
  }
}

TEST(SamplePercentileTest, TiesCollapseToTheTiedValue) {
  const std::vector<double> ties = {7.0, 7.0, 7.0, 7.0, 7.0};
  EXPECT_EQ(SamplePercentile(ties, 0.0), 7.0);
  EXPECT_EQ(SamplePercentile(ties, 0.5), 7.0);
  EXPECT_EQ(SamplePercentile(ties, 0.99), 7.0);
  // Ties at one end must not leak across the rank boundary.
  const std::vector<double> split = {1.0, 1.0, 1.0, 100.0};
  EXPECT_EQ(SamplePercentile(split, 0.0), 1.0);
  EXPECT_EQ(SamplePercentile(split, 1.0), 100.0);
}

TEST(SamplePercentileTest, UnsortedInputIsSortedFirst) {
  const std::vector<double> shuffled = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_EQ(SamplePercentile(shuffled, 0.0), 1.0);
  EXPECT_EQ(SamplePercentile(shuffled, 0.5), 5.0);
  EXPECT_EQ(SamplePercentile(shuffled, 1.0), 9.0);
}

TEST(SamplePercentileTest, NearestRankRoundsHalfUp) {
  // n=2: rank = p * 1; p=0.5 -> rank 0.5 -> rounds to index 1.
  EXPECT_EQ(SamplePercentile({10.0, 20.0}, 0.5), 20.0);
  // n=5: p=0.99 -> rank 3.96 -> index 4 (the max).
  EXPECT_EQ(SamplePercentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.99), 5.0);
  // n=5: p=0.25 -> rank 1.0 -> index 1 exactly.
  EXPECT_EQ(SamplePercentile({1.0, 2.0, 3.0, 4.0, 5.0}, 0.25), 2.0);
}

TEST(SamplePercentileTest, PercentilesAreMonotoneInP) {
  // The bench JSON schema gate requires p99 >= median for every entry; that
  // must hold structurally, for any sample.
  const std::vector<double> sample = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double prev = SamplePercentile(sample, 0.0);
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const double cur = SamplePercentile(sample, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

}  // namespace
}  // namespace bench
}  // namespace tempspec
