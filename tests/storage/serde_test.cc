#include "storage/serde.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

TEST(SerdeTest, PrimitivesRoundTrip) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.14159);
  enc.PutString("hello");
  enc.PutTimePoint(T(123));

  Decoder dec(buf);
  EXPECT_EQ(dec.GetU8().ValueOrDie(), 0xAB);
  EXPECT_EQ(dec.GetU32().ValueOrDie(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().ValueOrDie(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI64().ValueOrDie(), -42);
  EXPECT_DOUBLE_EQ(dec.GetDouble().ValueOrDie(), 3.14159);
  EXPECT_EQ(dec.GetString().ValueOrDie(), "hello");
  EXPECT_EQ(dec.GetTimePoint().ValueOrDie(), T(123));
  EXPECT_TRUE(dec.exhausted());
}

TEST(SerdeTest, UnderflowDetected) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU32(7);
  Decoder dec(buf);
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());
  // String whose claimed length exceeds the remaining bytes.
  std::string bad;
  Encoder enc2(&bad);
  enc2.PutU32(1000);
  bad += "short";
  Decoder dec2(bad);
  EXPECT_TRUE(dec2.GetString().status().IsCorruption());
}

TEST(SerdeTest, ValuesRoundTrip) {
  const Value values[] = {Value::Null(), Value(true),   Value(int64_t{-7}),
                          Value(2.75),   Value("text"), Value(T(99))};
  for (const Value& v : values) {
    std::string buf;
    Encoder enc(&buf);
    EncodeValue(v, &enc);
    Decoder dec(buf);
    ASSERT_OK_AND_ASSIGN(Value back, DecodeValue(&dec));
    EXPECT_EQ(back, v) << v.ToString();
  }
}

TEST(SerdeTest, TupleRoundTrip) {
  const Tuple t{int64_t{1}, "abc", 2.5, Value::Null()};
  std::string buf;
  Encoder enc(&buf);
  EncodeTuple(t, &enc);
  Decoder dec(buf);
  ASSERT_OK_AND_ASSIGN(Tuple back, DecodeTuple(&dec));
  EXPECT_EQ(back, t);
}

TEST(SerdeTest, ElementRoundTrip) {
  Element e = testing::MakeIntervalElement(T(10), T(20), T(30), 77, 5);
  e.tt_end = T(40);
  e.attributes = Tuple{int64_t{5}, "payload"};
  std::string buf;
  Encoder enc(&buf);
  EncodeElement(e, &enc);
  Decoder dec(buf);
  ASSERT_OK_AND_ASSIGN(Element back, DecodeElement(&dec));
  EXPECT_EQ(back.element_surrogate, 77u);
  EXPECT_EQ(back.object_surrogate, 5u);
  EXPECT_EQ(back.tt_begin, T(10));
  EXPECT_EQ(back.tt_end, T(40));
  EXPECT_EQ(back.valid, e.valid);
  EXPECT_EQ(back.attributes, e.attributes);
}

TEST(SerdeTest, EventElementKeepsKind) {
  const Element e = testing::MakeEventElement(T(10), T(5), 3);
  std::string buf;
  Encoder enc(&buf);
  EncodeElement(e, &enc);
  Decoder dec(buf);
  ASSERT_OK_AND_ASSIGN(Element back, DecodeElement(&dec));
  EXPECT_TRUE(back.valid.is_event());
  EXPECT_EQ(back.valid.at(), T(5));
}

TEST(SerdeTest, RandomElementsRoundTrip) {
  Random rng(5);
  for (int i = 0; i < 200; ++i) {
    Element e;
    e.element_surrogate = rng.Uniform(1, 1 << 30);
    e.object_surrogate = rng.Uniform(1, 100);
    e.tt_begin = T(rng.Uniform(-1000, 1000));
    e.tt_end = rng.OneIn(0.5) ? TimePoint::Max() : T(rng.Uniform(1000, 2000));
    if (rng.OneIn(0.5)) {
      e.valid = ValidTime::Event(T(rng.Uniform(-500, 500)));
    } else {
      const int64_t b = rng.Uniform(-500, 500);
      e.valid = ValidTime::IntervalUnchecked(T(b), T(b + rng.Uniform(0, 100)));
    }
    e.attributes = Tuple{rng.Uniform(0, 1 << 20), rng.NextString(rng.Uniform(0, 40)),
                         rng.NextDouble()};
    std::string buf;
    Encoder enc(&buf);
    EncodeElement(e, &enc);
    Decoder dec(buf);
    ASSERT_OK_AND_ASSIGN(Element back, DecodeElement(&dec));
    EXPECT_EQ(back.valid, e.valid);
    EXPECT_EQ(back.attributes, e.attributes);
    EXPECT_EQ(back.tt_begin, e.tt_begin);
    EXPECT_EQ(back.tt_end, e.tt_end);
  }
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  // The canonical IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(Crc32("hello"), Crc32("hellp"));
  EXPECT_NE(Crc32("ab"), Crc32("ba"));
}

}  // namespace
}  // namespace tempspec
