#include "allen/allen.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

TimeInterval IV(int64_t b, int64_t e) { return TimeInterval(T(b), T(e)); }

TEST(AllenTest, AllThirteenRelationsClassify) {
  const TimeInterval y = IV(10, 20);
  EXPECT_EQ(Classify(IV(1, 5), y).ValueOrDie(), AllenRelation::kBefore);
  EXPECT_EQ(Classify(IV(1, 10), y).ValueOrDie(), AllenRelation::kMeets);
  EXPECT_EQ(Classify(IV(5, 15), y).ValueOrDie(), AllenRelation::kOverlaps);
  EXPECT_EQ(Classify(IV(10, 15), y).ValueOrDie(), AllenRelation::kStarts);
  EXPECT_EQ(Classify(IV(12, 18), y).ValueOrDie(), AllenRelation::kDuring);
  EXPECT_EQ(Classify(IV(15, 20), y).ValueOrDie(), AllenRelation::kFinishes);
  EXPECT_EQ(Classify(IV(10, 20), y).ValueOrDie(), AllenRelation::kEquals);
  EXPECT_EQ(Classify(IV(25, 30), y).ValueOrDie(), AllenRelation::kAfter);
  EXPECT_EQ(Classify(IV(20, 30), y).ValueOrDie(), AllenRelation::kMetBy);
  EXPECT_EQ(Classify(IV(15, 25), y).ValueOrDie(), AllenRelation::kOverlappedBy);
  EXPECT_EQ(Classify(IV(10, 25), y).ValueOrDie(), AllenRelation::kStartedBy);
  EXPECT_EQ(Classify(IV(5, 25), y).ValueOrDie(), AllenRelation::kContains);
  EXPECT_EQ(Classify(IV(5, 20), y).ValueOrDie(), AllenRelation::kFinishedBy);
}

TEST(AllenTest, EmptyIntervalsRejected) {
  EXPECT_FALSE(Classify(IV(5, 5), IV(1, 2)).ok());
  EXPECT_FALSE(Classify(IV(1, 2), IV(5, 5)).ok());
}

TEST(AllenTest, InverseIsInvolution) {
  for (AllenRelation rel : AllAllenRelations()) {
    EXPECT_EQ(Inverse(Inverse(rel)), rel) << AllenRelationToString(rel);
  }
  EXPECT_EQ(Inverse(AllenRelation::kEquals), AllenRelation::kEquals);
}

TEST(AllenTest, ParseCanonicalNamesAndAliases) {
  for (AllenRelation rel : AllAllenRelations()) {
    ASSERT_OK_AND_ASSIGN(AllenRelation parsed,
                         ParseAllenRelation(AllenRelationToString(rel)));
    EXPECT_EQ(parsed, rel);
  }
  EXPECT_EQ(ParseAllenRelation("equal").ValueOrDie(), AllenRelation::kEquals);
  // The paper names inverses as "inverse before", "inverse finishes".
  EXPECT_EQ(ParseAllenRelation("inverse before").ValueOrDie(),
            AllenRelation::kAfter);
  EXPECT_EQ(ParseAllenRelation("inverse finishes").ValueOrDie(),
            AllenRelation::kFinishedBy);
  EXPECT_FALSE(ParseAllenRelation("sideways").ok());
}

// Property (the paper's [All83] claim): for any two non-empty intervals,
// EXACTLY ONE of the thirteen relations holds.
TEST(AllenPropertyTest, ExactlyOneRelationHoldsExhaustive) {
  // All interval pairs over a small integer domain — covers every endpoint
  // equality pattern.
  for (int64_t xb = 0; xb < 5; ++xb) {
    for (int64_t xe = xb + 1; xe <= 5; ++xe) {
      for (int64_t yb = 0; yb < 5; ++yb) {
        for (int64_t ye = yb + 1; ye <= 5; ++ye) {
          int holds = 0;
          for (AllenRelation rel : AllAllenRelations()) {
            holds += Holds(rel, IV(xb, xe), IV(yb, ye)) ? 1 : 0;
          }
          EXPECT_EQ(holds, 1) << "[" << xb << "," << xe << ") vs [" << yb << ","
                              << ye << ")";
        }
      }
    }
  }
}

// Property: Classify(x, y) == Inverse(Classify(y, x)).
TEST(AllenPropertyTest, ClassifyCommutesWithInverse) {
  Random rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const int64_t xb = rng.Uniform(0, 50);
    const int64_t xe = xb + rng.Uniform(1, 20);
    const int64_t yb = rng.Uniform(0, 50);
    const int64_t ye = yb + rng.Uniform(1, 20);
    const AllenRelation xy = Classify(IV(xb, xe), IV(yb, ye)).ValueOrDie();
    const AllenRelation yx = Classify(IV(yb, ye), IV(xb, xe)).ValueOrDie();
    EXPECT_EQ(xy, Inverse(yx));
  }
}

// Property: the seven base relations' endpoint characterizations.
TEST(AllenPropertyTest, EndpointCharacterizations) {
  Random rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    const int64_t xb = rng.Uniform(0, 30);
    const int64_t xe = xb + rng.Uniform(1, 10);
    const int64_t yb = rng.Uniform(0, 30);
    const int64_t ye = yb + rng.Uniform(1, 10);
    const TimeInterval x = IV(xb, xe), y = IV(yb, ye);
    switch (Classify(x, y).ValueOrDie()) {
      case AllenRelation::kBefore:
        EXPECT_LT(xe, yb);
        break;
      case AllenRelation::kMeets:
        EXPECT_EQ(xe, yb);
        break;
      case AllenRelation::kOverlaps:
        EXPECT_LT(xb, yb);
        EXPECT_LT(yb, xe);
        EXPECT_LT(xe, ye);
        break;
      case AllenRelation::kStarts:
        EXPECT_EQ(xb, yb);
        EXPECT_LT(xe, ye);
        break;
      case AllenRelation::kDuring:
        EXPECT_GT(xb, yb);
        EXPECT_LT(xe, ye);
        break;
      case AllenRelation::kFinishes:
        EXPECT_GT(xb, yb);
        EXPECT_EQ(xe, ye);
        break;
      case AllenRelation::kEquals:
        EXPECT_EQ(xb, yb);
        EXPECT_EQ(xe, ye);
        break;
      default:
        break;  // inverses covered via ClassifyCommutesWithInverse
    }
  }
}

}  // namespace
}  // namespace tempspec
