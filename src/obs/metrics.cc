#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace tempspec {

bool MetricsCompiledIn() {
#ifdef TEMPSPEC_METRICS
  return true;
#else
  return false;
#endif
}

size_t ThisThreadMetricShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

uint64_t MetricCounter::Value() const {
  uint64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void MetricCounter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void MetricHistogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
  }
}

size_t HistogramBucketFor(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // 0 -> 0, else 1..64
}

uint64_t HistogramBucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return UINT64_MAX;
  return (uint64_t{1} << bucket) - 1;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double target = p * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : buckets) {
    cumulative += n;
    if (static_cast<double>(cumulative) >= target) {
      return HistogramBucketUpperBound(bucket);
    }
  }
  return HistogramBucketUpperBound(buckets.empty() ? 0 : buckets.back().first);
}

HistogramSnapshot MetricHistogram::Snapshot() const {
  uint64_t totals[kHistogramBuckets] = {};
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      totals[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    if (totals[b] == 0) continue;
    out.count += totals[b];
    out.buckets.emplace_back(b, totals[b]);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked so instrumented destructors of other static objects can still
  // record at exit.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<MetricCounter>(name);
  return *slot;
}

MetricGauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<MetricGauge>(name);
  return *slot;
}

MetricHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<MetricHistogram>(name);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
  return snap;
}

size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::ResetValues() {
  // Not atomic with respect to concurrent writers; benches call this in a
  // quiescent moment between runs. Handles must stay valid, so every metric
  // is zeroed in place.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"p50\":" + std::to_string(h.Percentile(0.5)) +
           ",\"p99\":" + std::to_string(h.Percentile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace tempspec
