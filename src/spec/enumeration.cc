#include "spec/enumeration.h"

namespace tempspec {

std::vector<EnumeratedRegion> EnumerateEventRegions(Duration delta_small,
                                                    Duration delta_large) {
  std::vector<EnumeratedRegion> out;
  auto add = [&](std::string construction, Band band) {
    out.push_back(EnumeratedRegion{std::move(construction), band,
                                   EventSpecialization::ClassifyBand(band)});
  };

  // Zero lines: no restriction.
  add("zero lines", Band::All());

  // One line, two half-planes per line kind. Kind (1): vt = tt + Δ, Δ > 0.
  add("one line, kind (1), upper", Band::AtLeast(delta_small));
  add("one line, kind (1), lower", Band::AtMost(delta_small));
  // Kind (2): vt = tt.
  add("one line, kind (2), upper", Band::AtLeast(Duration::Zero()));
  add("one line, kind (2), lower", Band::AtMost(Duration::Zero()));
  // Kind (3): vt = tt - Δ, Δ > 0.
  add("one line, kind (3), upper", Band::AtLeast(-delta_small));
  add("one line, kind (3), lower", Band::AtMost(-delta_small));

  // Two lines: the five viable combinations (the lower line bounds from
  // below, the upper from above; (2)+(2) is a single line, and combinations
  // whose band would be empty are not regions).
  add("two lines, kinds (1)+(1)", Band::Between(delta_small, delta_large));
  add("two lines, kinds (2)+(1)", Band::Between(Duration::Zero(), delta_small));
  add("two lines, kinds (3)+(1)", Band::Between(-delta_small, delta_large));
  add("two lines, kinds (3)+(2)", Band::Between(-delta_small, Duration::Zero()));
  add("two lines, kinds (3)+(3)", Band::Between(-delta_large, -delta_small));

  return out;
}

std::string RenderFigure1(const std::vector<EnumeratedRegion>& regions) {
  std::string out;
  for (const auto& r : regions) {
    out += r.construction;
    out += ": ";
    out += r.band.ToString();
    out += "  =>  ";
    out += EventSpecKindToString(r.kind);
    out += "\n";
  }
  return out;
}

}  // namespace tempspec
