// Fixed-size pages and the slotted-page record layout.
#ifndef TEMPSPEC_STORAGE_PAGE_H_
#define TEMPSPEC_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "util/result.h"

namespace tempspec {

constexpr size_t kPageSize = 8192;
using PageId = uint64_t;
constexpr PageId kInvalidPageId = ~0ull;

/// \brief A raw page buffer.
struct Page {
  alignas(8) char data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }
};

/// \brief Slotted-record view over a Page.
///
/// Layout: [u16 slot_count][u16 free_offset][slot directory: u16 off, u16 len
/// per slot][... free space ...][records packed from the end].
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// \brief Formats an empty page.
  void Init();

  uint16_t slot_count() const { return ReadU16(0); }

  /// \brief Free bytes remaining (accounting for the new slot entry).
  size_t FreeSpace() const;

  /// \brief True if a record of `size` bytes fits.
  bool Fits(size_t size) const { return FreeSpace() >= size + kSlotEntrySize; }

  /// \brief Appends a record; returns its slot index.
  Result<uint16_t> Insert(std::string_view record);

  /// \brief Reads the record in a slot.
  Result<std::string_view> Get(uint16_t slot) const;

 private:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotEntrySize = 4;

  uint16_t ReadU16(size_t offset) const {
    uint16_t v;
    std::memcpy(&v, page_->data + offset, 2);
    return v;
  }
  void WriteU16(size_t offset, uint16_t v) {
    std::memcpy(page_->data + offset, &v, 2);
  }

  Page* page_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_PAGE_H_
