// E9 — Rollback on the backlog representation: naive prefix replay vs the
// snapshot/differential cache (the [JMRS90] technique cited in Section 2).
//
// Sweeps the backlog size; the cached variant replays only the suffix past
// the nearest snapshot. Also sweeps the snapshot interval at a fixed size to
// expose the space/time trade-off (counter reports cache residency).
#include "bench_common.h"
#include "storage/snapshot.h"
#include "util/thread_pool.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

std::unique_ptr<BacklogStore> MakeBacklog(int64_t operations) {
  auto store = Require(BacklogStore::Open({}));
  Random rng(17);
  ElementSurrogate next = 1;
  std::vector<ElementSurrogate> alive;
  for (int64_t i = 0; i < operations; ++i) {
    const TimePoint tt = TimePoint::FromSeconds(i);
    if (!alive.empty() && rng.OneIn(0.3)) {
      const size_t pick = static_cast<size_t>(rng.Uniform(0, alive.size() - 1));
      BacklogEntry del;
      del.op = BacklogOpType::kLogicalDelete;
      del.tt = tt;
      del.target = alive[pick];
      alive.erase(alive.begin() + pick);
      Require(store->Append(del));
    } else {
      BacklogEntry ins;
      ins.op = BacklogOpType::kInsert;
      ins.tt = tt;
      ins.element.element_surrogate = next;
      ins.element.object_surrogate = next % 64 + 1;
      ins.element.tt_begin = tt;
      ins.element.valid = ValidTime::Event(tt - Duration::Seconds(30));
      ins.element.attributes = Tuple{static_cast<int64_t>(next % 64)};
      alive.push_back(next);
      ++next;
      Require(store->Append(ins));
    }
  }
  return store;
}

void BM_Rollback_NaiveReplay(benchmark::State& state) {
  auto store = MakeBacklog(state.range(0));
  Random rng(29);
  for (auto _ : state) {
    const TimePoint tt = TimePoint::FromSeconds(rng.Uniform(0, state.range(0)));
    auto result = store->MaterializeState(tt);
    benchmark::DoNotOptimize(result);
  }
}

void BM_Rollback_SnapshotDifferential(benchmark::State& state) {
  auto store = MakeBacklog(state.range(0));
  SnapshotManager snapshots(store.get(), /*interval=*/1024);
  snapshots.Refresh();
  Random rng(29);
  for (auto _ : state) {
    const TimePoint tt = TimePoint::FromSeconds(rng.Uniform(0, state.range(0)));
    auto result = snapshots.StateAt(tt);
    benchmark::DoNotOptimize(result);
  }
  state.counters["cached_elements"] =
      benchmark::Counter(static_cast<double>(snapshots.cached_elements()));
}

void BM_Rollback_SnapshotDifferentialParallel(benchmark::State& state) {
  // Same replay as above, but the merged state is copied out by the thread
  // pool (the replay itself is inherently sequential; only materialization
  // parallelizes, so gains appear when the reconstructed state is large).
  auto store = MakeBacklog(state.range(0));
  SnapshotManager snapshots(store.get(), /*interval=*/1024);
  snapshots.Refresh();
  ThreadPool pool;
  Random rng(29);
  for (auto _ : state) {
    const TimePoint tt = TimePoint::FromSeconds(rng.Uniform(0, state.range(0)));
    auto result = snapshots.StateAt(tt, &pool);
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(pool.size()));
}

void BM_Rollback_IntervalSweep(benchmark::State& state) {
  // Fixed backlog, varying snapshot interval: replay cost vs cache size.
  constexpr int64_t kOps = 65536;
  auto store = MakeBacklog(kOps);
  SnapshotManager snapshots(store.get(),
                            static_cast<size_t>(state.range(0)));
  snapshots.Refresh();
  Random rng(31);
  for (auto _ : state) {
    const TimePoint tt = TimePoint::FromSeconds(rng.Uniform(0, kOps));
    auto result = snapshots.StateAt(tt);
    benchmark::DoNotOptimize(result);
  }
  state.counters["snapshot_interval"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["cached_elements"] =
      benchmark::Counter(static_cast<double>(snapshots.cached_elements()));
}

}  // namespace

BENCHMARK(BM_Rollback_NaiveReplay)->Range(1024, 65536);
BENCHMARK(BM_Rollback_SnapshotDifferential)->Range(1024, 65536);
BENCHMARK(BM_Rollback_SnapshotDifferentialParallel)->Range(1024, 65536);
BENCHMARK(BM_Rollback_IntervalSweep)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

TEMPSPEC_BENCH_MAIN("e9_rollback");
