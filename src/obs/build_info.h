// The build-configuration stamp, shared by /varz and the bench JSON params:
// perf numbers and live telemetry are only comparable between
// identically-configured trees, so every surface carries the same stamp.
#ifndef TEMPSPEC_OBS_BUILD_INFO_H_
#define TEMPSPEC_OBS_BUILD_INFO_H_

#include <string>

namespace tempspec {

/// \brief JSON object describing this binary's compile-time configuration:
/// {"metrics_enabled":0|1,"failpoints_enabled":0|1,
///  "flightrecorder_enabled":0|1,"sanitizers":""|"thread"|"address",
///  "compiler":"<__VERSION__>"}.
std::string BuildConfigJson();

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_BUILD_INFO_H_
