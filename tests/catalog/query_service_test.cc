// QueryService (catalog/query_service.h): the daemon's execution layer.
// Covers DDL through statements, schemas.sql + per-relation storage-dir
// persistence, recovery of both schemas and data on reopen, drop, and the
// in-memory mode the tests and benchmarks use.
#include "catalog/query_service.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "testing.h"

namespace tempspec {
namespace {

std::string MakeTempDir() {
  char pattern[] = "/tmp/tempspec_svc_XXXXXX";
  const char* dir = ::mkdtemp(pattern);
  return dir == nullptr ? "" : dir;
}

constexpr char kCreate[] =
    "CREATE EVENT RELATION readings (sensor INT64 KEY, celsius DOUBLE) "
    "GRANULARITY 1s";

TEST(QueryServiceTest, InMemoryLifecycle) {
  QueryService service{QueryServiceOptions{}};
  ASSERT_OK(service.Open());
  ASSERT_OK_AND_ASSIGN(std::string created,
                       service.Execute(kCreate, nullptr));
  EXPECT_NE(created.find("created relation readings"), std::string::npos);
  ASSERT_OK(service
                .Execute(
                    "INSERT INTO readings OBJECT 3 VALUES (3, 21.5) "
                    "VALID AT '1992-02-03 10:00:00'",
                    nullptr)
                .status());
  ASSERT_OK_AND_ASSIGN(std::string current,
                       service.Execute("CURRENT readings", nullptr));
  EXPECT_NE(current.find("1 element(s)"), std::string::npos) << current;
  ASSERT_OK_AND_ASSIGN(std::string dropped,
                       service.Execute("DROP RELATION readings", nullptr));
  EXPECT_NE(dropped.find("dropped relation readings"), std::string::npos);
  EXPECT_FALSE(service.Execute("CURRENT readings", nullptr).ok());
}

TEST(QueryServiceTest, PersistsSchemasAndDataAcrossReopen) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  QueryServiceOptions options;
  options.data_dir = dir;
  {
    QueryService service(options);
    ASSERT_OK(service.Open());
    ASSERT_OK(service.Execute(kCreate, nullptr).status());
    ASSERT_OK(service
                  .Execute(
                      "INSERT INTO readings OBJECT 3 VALUES (3, 21.5) "
                      "VALID AT '1992-02-03 10:00:00'",
                      nullptr)
                  .status());
    // The on-disk layout is the documented one: schemas.sql at the root,
    // one storage directory per relation.
    EXPECT_TRUE(std::filesystem::exists(dir + "/schemas.sql"));
    EXPECT_TRUE(std::filesystem::is_directory(dir + "/relations/readings"));
  }
  {
    QueryService reopened(options);
    ASSERT_OK(reopened.Open());
    ASSERT_EQ(reopened.RelationNames().size(), 1u);
    ASSERT_OK_AND_ASSIGN(std::string current,
                         reopened.Execute("CURRENT readings", nullptr));
    EXPECT_NE(current.find("1 element(s)"), std::string::npos) << current;
    // And the recovered relation accepts further writes.
    ASSERT_OK(reopened
                  .Execute(
                      "INSERT INTO readings OBJECT 4 VALUES (4, 22.0) "
                      "VALID AT '1992-02-03 11:00:00'",
                      nullptr)
                  .status());
  }
  std::filesystem::remove_all(dir);
}

TEST(QueryServiceTest, DropPersists) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  QueryServiceOptions options;
  options.data_dir = dir;
  {
    QueryService service(options);
    ASSERT_OK(service.Open());
    ASSERT_OK(service.Execute(kCreate, nullptr).status());
    ASSERT_OK(service.Execute("DROP RELATION readings", nullptr).status());
  }
  {
    QueryService reopened(options);
    ASSERT_OK(reopened.Open());
    EXPECT_TRUE(reopened.RelationNames().empty());
  }
  std::filesystem::remove_all(dir);
}

TEST(QueryServiceTest, MultipleRelationsGetDistinctStorageDirs) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  QueryServiceOptions options;
  options.data_dir = dir;
  {
    QueryService service(options);
    ASSERT_OK(service.Open());
    ASSERT_OK(service.Execute(kCreate, nullptr).status());
    ASSERT_OK(service
                  .Execute(
                      "CREATE EVENT RELATION other (id INT64 KEY, v DOUBLE) "
                      "GRANULARITY 1s",
                      nullptr)
                  .status());
    ASSERT_OK(service
                  .Execute(
                      "INSERT INTO other OBJECT 1 VALUES (1, 1.0) "
                      "VALID AT '1992-02-03 10:00:00'",
                      nullptr)
                  .status());
    EXPECT_TRUE(std::filesystem::is_directory(dir + "/relations/readings"));
    EXPECT_TRUE(std::filesystem::is_directory(dir + "/relations/other"));
  }
  {
    QueryService reopened(options);
    ASSERT_OK(reopened.Open());
    ASSERT_EQ(reopened.RelationNames().size(), 2u);
    ASSERT_OK_AND_ASSIGN(std::string other,
                         reopened.Execute("CURRENT other", nullptr));
    EXPECT_NE(other.find("1 element(s)"), std::string::npos);
    ASSERT_OK_AND_ASSIGN(std::string readings,
                         reopened.Execute("CURRENT readings", nullptr));
    EXPECT_NE(readings.find("0 element(s)"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(QueryServiceTest, ErrorsSurfaceCleanly) {
  QueryService service{QueryServiceOptions{}};
  ASSERT_OK(service.Open());
  EXPECT_FALSE(service.Execute("CURRENT nope", nullptr).ok());
  EXPECT_FALSE(service.Execute("CREATE GARBAGE", nullptr).ok());
  EXPECT_FALSE(service.Execute("DROP RELATION nope", nullptr).ok());
  // Creating the same relation twice fails the second time.
  ASSERT_OK(service.Execute(kCreate, nullptr).status());
  EXPECT_FALSE(service.Execute(kCreate, nullptr).ok());
}

}  // namespace
}  // namespace tempspec
