// Status: error-code + message return type, in the style of Apache Arrow and
// RocksDB. Functions that can fail return Status (or Result<T>, see
// result.h); exceptions are not used on library paths.
#ifndef TEMPSPEC_UTIL_STATUS_H_
#define TEMPSPEC_UTIL_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace tempspec {

enum class StatusCode : char {
  kOk = 0,
  kInvalidArgument = 1,
  kConstraintViolation = 2,  // a temporal-specialization constraint rejected an update
  kNotFound = 3,
  kAlreadyExists = 4,
  kOutOfRange = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,  // a per-query deadline cancelled the work
  kUnavailable = 11,       // transient overload (admission control, shutdown)
};

/// \brief Returns the canonical name of a status code, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus a human-readable message.
///
/// OK carries no allocation; error states allocate a small state block.
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ConstraintViolation(Args&&... args) {
    return Make(StatusCode::kConstraintViolation, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Corruption(Args&&... args) {
    return Make(StatusCode::kCorruption, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotImplemented(Args&&... args) {
    return Make(StatusCode::kNotImplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process if this status is an error. Use only in
  /// examples/tests and for invariants that cannot fail.
  void Check() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream ss;
    (ss << ... << args);
    return Status(code, ss.str());
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace tempspec

#endif  // TEMPSPEC_UTIL_STATUS_H_
