// Design advisor: the taxonomy as a database-design tool.
//
// The paper's closing claim: "This taxonomy may be employed during database
// design to specify the particular time semantics of temporal relations."
// This example takes an UNdocumented pile of data, infers its tightest
// specializations, and produces a physical-design recommendation.
#include <iostream>

#include "catalog/advisor.h"
#include "lang/ddl.h"
#include "spec/inference.h"
#include "spec/lattice.h"
#include "workload/workloads.h"

using namespace tempspec;

namespace {

void Analyze(const char* title, const TemporalRelation& relation) {
  std::cout << "=== " << title << " ===\n";
  const RelationProfile profile =
      InferProfile(relation.elements(), relation.schema().valid_kind(),
                   relation.schema().valid_granularity());
  std::cout << profile.Report();

  // Turn the inferred event type into a declaration and ask the advisor.
  SpecializationSet inferred;
  if (relation.schema().IsEventRelation() && profile.event.applicable) {
    auto spec = SpecFromProfile(profile.event);
    if (spec.ok()) inferred.AddEvent(spec.ValueOrDie());
    if (profile.global_ordering.sequential) {
      inferred.AddOrdering(OrderingSpec(OrderingKind::kSequential));
    } else if (profile.global_ordering.non_decreasing) {
      inferred.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
    }
    if (profile.regularity.temporal_regular && profile.regularity.temporal_strict) {
      auto reg = RegularitySpec::Make(
          RegularityDimension::kTemporal,
          Duration::Micros(profile.regularity.temporal_unit_us), true);
      if (reg.ok()) inferred.AddRegularity(reg.ValueOrDie());
    }
  }
  std::cout << Advise(relation.schema(), inferred).ToString();
  std::cout << "suggested declaration:\n"
            << SuggestDdl(profile, relation.schema()) << "\n\n";
}

}  // namespace

int main() {
  WorkloadConfig config;
  config.num_objects = 8;
  config.ops_per_object = 64;

  {
    auto s = MakeDegenerateMonitoring(config, Duration::Seconds(10)).ValueOrDie();
    GenerateDegenerateMonitoring(config, Duration::Seconds(10), &s).Check();
    Analyze("reactor samples (no delay)", *s.relation);
  }
  {
    auto s = MakeProcessMonitoring(config, Duration::Seconds(30),
                                   Duration::Seconds(120), Duration::Minutes(1))
                 .ValueOrDie();
    GenerateProcessMonitoring(config, Duration::Seconds(30), Duration::Seconds(120),
                              Duration::Minutes(1), &s)
        .Check();
    Analyze("plant temperatures (30-120s transmission delay)", *s.relation);
  }
  {
    auto s = MakeGeneral(config).ValueOrDie();
    GenerateGeneral(config, Duration::Days(30), &s).Check();
    Analyze("unstructured events (baseline)", *s.relation);
  }

  // The generalization lattices of Figures 2-5, as reference output.
  std::cout << "=== Figure 2: event-taxonomy lattice ===\n"
            << SpecLattice::EventTaxonomy().ToString() << "\n";
  std::cout << "=== Figure 3: inter-event orderings ===\n"
            << SpecLattice::InterEventOrderings().ToString() << "\n";
  std::cout << "=== Figure 4: inter-event regularity ===\n"
            << SpecLattice::InterEventRegularity().ToString() << "\n";
  std::cout << "=== Figure 5: inter-interval taxonomy ===\n"
            << SpecLattice::InterIntervalTaxonomy().ToString();
  return 0;
}
