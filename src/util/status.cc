#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace tempspec {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kConstraintViolation:
      return "Constraint violation";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace tempspec
