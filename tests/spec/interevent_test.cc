#include "spec/interevent_spec.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::T;

std::vector<EventStamp> Stamps(
    std::initializer_list<std::pair<int64_t, int64_t>> tt_vt,
    std::initializer_list<ObjectSurrogate> partitions = {}) {
  std::vector<EventStamp> out;
  size_t i = 0;
  std::vector<ObjectSurrogate> parts(partitions);
  for (const auto& [tt, vt] : tt_vt) {
    out.push_back(EventStamp{T(tt), T(vt), i < parts.size() ? parts[i] : 0});
    ++i;
  }
  return out;
}

// --- Orderings ---------------------------------------------------------------

TEST(OrderingTest, NonDecreasing) {
  OrderingSpec spec(OrderingKind::kNonDecreasing);
  EXPECT_OK(spec.CheckStamps(Stamps({{1, 10}, {2, 10}, {3, 15}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{1, 10}, {2, 9}})));
}

TEST(OrderingTest, NonIncreasingArchaeology) {
  // "an archeological relation that records information about progressively
  // earlier periods uncovered as excavation proceeds."
  OrderingSpec spec(OrderingKind::kNonIncreasing);
  EXPECT_OK(spec.CheckStamps(Stamps({{1, 100}, {2, 80}, {3, 80}, {4, 10}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{1, 100}, {2, 101}})));
}

TEST(OrderingTest, Sequential) {
  OrderingSpec spec(OrderingKind::kSequential);
  // Each event occurs and is stored before the next occurs or is stored.
  EXPECT_OK(spec.CheckStamps(Stamps({{2, 1}, {4, 3}, {6, 5}})));
  // vt of the second precedes tt of the first: not sequential.
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{2, 1}, {4, 1}})));
  // tt of the second precedes vt of the first: not sequential.
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{2, 5}, {4, 6}})));
}

TEST(OrderingTest, SequentialImpliesNonDecreasing) {
  // Figure 3's edge, checked on random sequential extensions.
  Random rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<EventStamp> stamps;
    int64_t frontier = 0;
    for (int i = 0; i < 20; ++i) {
      const int64_t a = frontier + rng.Uniform(1, 5);
      const int64_t b = a + rng.Uniform(0, 5);
      // Randomly order (tt, vt) within the window; both beyond the frontier.
      if (rng.OneIn(0.5)) {
        stamps.push_back(EventStamp{T(b), T(a), 0});
      } else {
        stamps.push_back(EventStamp{T(a), T(b), 0});
      }
      frontier = b;
    }
    std::stable_sort(stamps.begin(), stamps.end(),
                     [](const EventStamp& x, const EventStamp& y) {
                       return x.tt < y.tt;
                     });
    if (OrderingSpec(OrderingKind::kSequential).CheckStamps(stamps).ok()) {
      EXPECT_OK(OrderingSpec(OrderingKind::kNonDecreasing).CheckStamps(stamps));
    }
  }
}

TEST(OrderingTest, PerSurrogateScope) {
  // Interleaved objects: globally non-sequential (object 1's event at vt 30
  // is still in the future when object 2's is stored), but each life-line is
  // sequential on its own.
  auto stamps = Stamps({{10, 30}, {12, 13}, {40, 60}, {42, 45}}, {1, 2, 1, 2});
  EXPECT_NOT_OK(
      OrderingSpec(OrderingKind::kSequential, SpecScope::kPerRelation)
          .CheckStamps(stamps));
  EXPECT_OK(OrderingSpec(OrderingKind::kSequential,
                         SpecScope::kPerObjectSurrogate)
                .CheckStamps(stamps));
}

TEST(OrderingTest, GlobalImpliesPerPartition) {
  // Pairwise universally quantified properties restrict to subsets: any
  // globally ordered extension is ordered per partition as well.
  Random rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<EventStamp> stamps;
    int64_t vt = 0;
    for (int i = 0; i < 30; ++i) {
      vt += rng.Uniform(0, 4);
      stamps.push_back(
          EventStamp{T(i), T(vt), static_cast<ObjectSurrogate>(rng.Uniform(1, 4))});
    }
    ASSERT_OK(OrderingSpec(OrderingKind::kNonDecreasing, SpecScope::kPerRelation)
                  .CheckStamps(stamps));
    EXPECT_OK(OrderingSpec(OrderingKind::kNonDecreasing,
                           SpecScope::kPerObjectSurrogate)
                  .CheckStamps(stamps));
  }
}

TEST(OrderingTest, OnlineMatchesBatch) {
  Random rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<EventStamp> stamps;
    for (int i = 0; i < 12; ++i) {
      stamps.push_back(EventStamp{
          T(i), T(rng.Uniform(0, 20)),
          static_cast<ObjectSurrogate>(rng.Uniform(1, 3))});
    }
    for (OrderingKind kind :
         {OrderingKind::kNonDecreasing, OrderingKind::kNonIncreasing,
          OrderingKind::kSequential}) {
      for (SpecScope scope :
           {SpecScope::kPerRelation, SpecScope::kPerObjectSurrogate}) {
        OrderingSpec spec(kind, scope);
        OnlineOrderingChecker online(spec);
        Status online_status;
        for (const auto& s : stamps) {
          online_status = online.OnInsert(s);
          if (!online_status.ok()) break;
        }
        const Status batch_status = spec.CheckStamps(stamps);
        EXPECT_EQ(online_status.ok(), batch_status.ok())
            << spec.ToString() << " trial " << trial;
      }
    }
  }
}

TEST(OrderingTest, OnlineCheckDoesNotMutateOnReject) {
  OnlineOrderingChecker online(OrderingSpec(OrderingKind::kNonDecreasing));
  ASSERT_OK(online.OnInsert(EventStamp{T(1), T(10), 0}));
  // Check alone must not commit.
  EXPECT_NOT_OK(online.Check(EventStamp{T(2), T(5), 0}));
  EXPECT_OK(online.Check(EventStamp{T(2), T(10), 0}));
  EXPECT_OK(online.OnInsert(EventStamp{T(2), T(10), 0}));
}

// --- Regularity ---------------------------------------------------------------

TEST(RegularityTest, TransactionTimeRegular) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                            Duration::Seconds(10)));
  // "the transaction time-stamps of successively stored elements need not be
  // evenly spaced; they are merely restricted to be separated by an integral
  // multiple of a specified duration."
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 3}, {10, 1}, {40, 2}, {50, 99}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 3}, {15, 1}})));
}

TEST(RegularityTest, ValidTimeRegularExpressesGranularity) {
  // "if the valid time-stamp granularity is one second then, equivalently,
  // the relation is valid time event regular with time unit one second."
  ASSERT_OK_AND_ASSIGN(auto spec, RegularitySpec::Make(
                                      RegularityDimension::kValidTime,
                                      Duration::Seconds(1)));
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 5}, {1, 3}, {2, 100}})));
}

TEST(RegularityTest, TemporalRegularNeedsSharedMultiplier) {
  ASSERT_OK_AND_ASSIGN(auto spec, RegularitySpec::Make(
                                      RegularityDimension::kTemporal,
                                      Duration::Seconds(10)));
  // Same k for both dimensions: offsets tt - vt constant.
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 5}, {10, 15}, {30, 35}})));
  // Both regular separately but multipliers differ.
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 0}, {10, 20}})));
}

TEST(RegularityTest, PaperNoteTemporalIsMoreRestrictiveThanBoth) {
  // Section 3.2 states both that temporal regularity is "more restrictive
  // than valid and transaction time event regular together" AND that tt-
  // regular(Δt1) + vt-regular(Δt2) imply temporal regular(gcd). The two
  // statements conflict; the definitions support the former. Witness: tt
  // regular with 28s, vt regular with 6s, NOT temporal regular with 2s.
  auto stamps = Stamps({{0, 0}, {28, 6}});
  ASSERT_OK(RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                 Duration::Seconds(28))
                ->CheckStamps(stamps));
  ASSERT_OK(RegularitySpec::Make(RegularityDimension::kValidTime,
                                 Duration::Seconds(6))
                ->CheckStamps(stamps));
  EXPECT_NOT_OK(RegularitySpec::Make(RegularityDimension::kTemporal,
                                     Duration::Seconds(2))
                    ->CheckStamps(stamps));
  // The sound direction: temporal regular implies both (same unit).
  auto lockstep = Stamps({{0, 4}, {20, 24}, {60, 64}});
  ASSERT_OK(RegularitySpec::Make(RegularityDimension::kTemporal,
                                 Duration::Seconds(2))
                ->CheckStamps(lockstep));
  EXPECT_OK(RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                 Duration::Seconds(2))
                ->CheckStamps(lockstep));
  EXPECT_OK(RegularitySpec::Make(RegularityDimension::kValidTime,
                                 Duration::Seconds(2))
                ->CheckStamps(lockstep));
}

TEST(RegularityTest, StrictTransactionTime) {
  ASSERT_OK_AND_ASSIGN(
      auto spec, RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                      Duration::Seconds(10), /*strict=*/true));
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 1}, {10, 2}, {20, 3}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 1}, {20, 2}})));  // gap
}

TEST(RegularityTest, StrictValidTimeDisallowsDuplicatesAndGaps) {
  ASSERT_OK_AND_ASSIGN(
      auto spec, RegularitySpec::Make(RegularityDimension::kValidTime,
                                      Duration::Seconds(10), /*strict=*/true));
  // Valid times can arrive out of order but must form a gap-free
  // progression.
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 10}, {1, 0}, {2, 20}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 10}, {1, 10}})));  // duplicate
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 10}, {1, 30}})));  // gap
}

TEST(RegularityTest, StrictTemporalLockstep) {
  ASSERT_OK_AND_ASSIGN(
      auto spec, RegularitySpec::Make(RegularityDimension::kTemporal,
                                      Duration::Seconds(5), /*strict=*/true));
  EXPECT_OK(spec.CheckStamps(Stamps({{0, 2}, {5, 7}, {10, 12}})));
  EXPECT_NOT_OK(spec.CheckStamps(Stamps({{0, 2}, {5, 8}})));
  // Strict tt + strict vt regular does NOT imply strict temporal (Section
  // 3.2): stamps stepping in opposite directions.
  auto opposite = Stamps({{0, 10}, {5, 5}, {10, 0}});
  ASSERT_OK(RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                 Duration::Seconds(5), true)
                ->CheckStamps(opposite));
  ASSERT_OK(RegularitySpec::Make(RegularityDimension::kValidTime,
                                 Duration::Seconds(5), true)
                ->CheckStamps(opposite));
  EXPECT_NOT_OK(RegularitySpec::Make(RegularityDimension::kTemporal,
                                     Duration::Seconds(5), true)
                    ->CheckStamps(opposite));
}

TEST(RegularityTest, CalendricUnit) {
  // Monthly deposits: valid times on the 1st of each month are congruent
  // under a one-month unit despite months of different lengths.
  ASSERT_OK_AND_ASSIGN(auto spec, RegularitySpec::Make(
                                      RegularityDimension::kValidTime,
                                      Duration::Months(1)));
  std::vector<EventStamp> stamps = {
      EventStamp{T(0), Civil(1992, 1, 1), 0},
      EventStamp{T(1), Civil(1992, 2, 1), 0},
      EventStamp{T(2), Civil(1992, 5, 1), 0},
  };
  EXPECT_OK(spec.CheckStamps(stamps));
  stamps.push_back(EventStamp{T(3), Civil(1992, 6, 2), 0});
  EXPECT_NOT_OK(spec.CheckStamps(stamps));
}

TEST(RegularityTest, UnitMultiplierFixedAndCalendric) {
  EXPECT_EQ(UnitMultiplier(T(0), T(30), Duration::Seconds(10)),
            std::optional<int64_t>(3));
  EXPECT_EQ(UnitMultiplier(T(0), T(35), Duration::Seconds(10)), std::nullopt);
  EXPECT_EQ(UnitMultiplier(T(30), T(0), Duration::Seconds(10)),
            std::optional<int64_t>(-3));
  EXPECT_EQ(
      UnitMultiplier(Civil(1992, 1, 31), Civil(1992, 3, 31), Duration::Months(1)),
      std::optional<int64_t>(2));
  // Day-clamping breaks exact congruence: Jan 31 + 1mo = Feb 29 != Mar 1.
  EXPECT_EQ(
      UnitMultiplier(Civil(1992, 1, 31), Civil(1992, 3, 1), Duration::Months(1)),
      std::nullopt);
}

TEST(RegularityTest, OnlineMatchesBatchForStrictValid) {
  ASSERT_OK_AND_ASSIGN(
      auto spec, RegularitySpec::Make(RegularityDimension::kValidTime,
                                      Duration::Seconds(10), /*strict=*/true));
  OnlineRegularityChecker online(spec);
  EXPECT_OK(online.OnInsert(EventStamp{T(0), T(100), 0}));
  EXPECT_OK(online.OnInsert(EventStamp{T(1), T(110), 0}));   // extends top
  EXPECT_OK(online.OnInsert(EventStamp{T(2), T(90), 0}));    // extends bottom
  EXPECT_NOT_OK(online.OnInsert(EventStamp{T(3), T(100), 0}));  // duplicate
  EXPECT_NOT_OK(online.OnInsert(EventStamp{T(3), T(130), 0}));  // gap
  EXPECT_OK(online.OnInsert(EventStamp{T(3), T(120), 0}));
}

TEST(RegularityTest, PaperNotePerPartitionDoesNotImplyGlobal) {
  // §3.2 claims "the per partition variant implies the global variant" for
  // non-strict regularity. Counterexample: two single-element partitions are
  // each (vacuously) tt-regular with ANY unit, but their stamps need not be
  // congruent to each other. (The converse — global implies per-partition —
  // holds for all pairwise properties; see GlobalImpliesPerPartition.)
  std::vector<EventStamp> stamps = {
      EventStamp{T(0), T(0), 1},
      EventStamp{T(5), T(5), 2},
  };
  ASSERT_OK_AND_ASSIGN(auto per, RegularitySpec::Make(
                                     RegularityDimension::kTransactionTime,
                                     Duration::Seconds(10), false,
                                     SpecScope::kPerObjectSurrogate));
  ASSERT_OK_AND_ASSIGN(auto global, RegularitySpec::Make(
                                        RegularityDimension::kTransactionTime,
                                        Duration::Seconds(10)));
  EXPECT_OK(per.CheckStamps(stamps));
  EXPECT_NOT_OK(global.CheckStamps(stamps));
}

TEST(RegularityTest, RejectsNonPositiveUnit) {
  EXPECT_FALSE(RegularitySpec::Make(RegularityDimension::kValidTime,
                                    Duration::Zero())
                   .ok());
  EXPECT_FALSE(RegularitySpec::Make(RegularityDimension::kValidTime,
                                    Duration::Seconds(-1))
                   .ok());
}

}  // namespace
}  // namespace tempspec
