// Slow-query log: threshold gating, ring eviction, JSONL sink validity.
#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "obs/trace.h"
#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

using testing::JsonParser;

// TraceContext owns cancellation atomics, so it is neither copyable nor
// movable: spans are built in place.
void MakeSpan(const std::string& name, TraceContext* trace) {
  trace->Begin(name);
  trace->SetAttr("strategy", "full_scan");
  trace->AddCounter("elements_examined", 7);
  trace->End();
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog log(/*capacity=*/8);
  log.SetThresholdMicros(std::numeric_limits<uint64_t>::max());
  TraceContext fast;
  MakeSpan("query.current", &fast);
  log.Record(fast, "CURRENT samples");
  EXPECT_EQ(log.TotalRecorded(), 0u);
  EXPECT_TRUE(log.Entries().empty());

  log.SetThresholdMicros(0);  // record everything
  TraceContext slow;
  MakeSpan("query.current", &slow);
  log.Record(slow, "CURRENT samples");
  EXPECT_EQ(log.TotalRecorded(), 1u);
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_EQ(log.Entries()[0].statement, "CURRENT samples");
  EXPECT_EQ(log.Entries()[0].sequence, 1u);
}

TEST(SlowQueryLogTest, RingEvictsOldestAndKeepsSequence) {
  SlowQueryLog log(/*capacity=*/3);
  log.SetThresholdMicros(0);
  for (int i = 0; i < 5; ++i) {
    TraceContext t;
    MakeSpan("query.current", &t);
    log.Record(t, "stmt " + std::to_string(i));
  }
  EXPECT_EQ(log.TotalRecorded(), 5u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].statement, "stmt 2");
  EXPECT_EQ(entries[2].statement, "stmt 4");
  EXPECT_EQ(entries[0].sequence, 3u);
  EXPECT_EQ(entries[2].sequence, 5u);
}

TEST(SlowQueryLogTest, ShrinkingCapacityDropsOldest) {
  SlowQueryLog log(/*capacity=*/4);
  log.SetThresholdMicros(0);
  for (int i = 0; i < 4; ++i) {
    TraceContext t;
    MakeSpan("query.current", &t);
    log.Record(t, "stmt " + std::to_string(i));
  }
  log.SetCapacity(2);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].statement, "stmt 2");
}

TEST(SlowQueryLogTest, EntryAndSinkLinesAreValidJson) {
  const std::string path = ::testing::TempDir() + "/tempspec_slowlog.jsonl";
  std::remove(path.c_str());
  SlowQueryLog log(/*capacity=*/8);
  log.SetThresholdMicros(0);
  log.SetSinkPath(path);
  // Statement with every character class JsonEscape must handle.
  const std::string nasty =
      "CURRENT \"weird\"\\name\twith\nnewline and caf\xC3\xA9 \x01control";
  TraceContext t;
  MakeSpan("query.current", &t);
  log.Record(t, nasty);

  // The in-memory entry round-trips through the JSON parser.
  ASSERT_EQ(log.Entries().size(), 1u);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       JsonParser::Parse(log.Entries()[0].ToJson()));
  EXPECT_TRUE(v.has("trace"));
  EXPECT_EQ(v.at("statement").string, nasty);
  EXPECT_EQ(v.at("trace").at("attrs").at("strategy").string, "full_scan");

  // And the sink file holds the identical line.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, log.Entries()[0].ToJson());
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, EntriesCarryTheTraceIdForJoiningRetainedSpans) {
  SlowQueryLog log(/*capacity=*/8);
  log.SetThresholdMicros(0);
  TraceContext t;
  MakeSpan("query.current", &t);
  ASSERT_NE(t.trace_id(), 0u);
  log.Record(t, "CURRENT samples");
  ASSERT_EQ(log.Entries().size(), 1u);
  // The entry's trace_id is the join key against /debug/traces and
  // SHOW TRACES: the same process-unique id the span itself carries.
  EXPECT_EQ(log.Entries()[0].trace_id, t.trace_id());
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       JsonParser::Parse(log.Entries()[0].ToJson()));
  EXPECT_EQ(v.at("trace_id").number, std::to_string(t.trace_id()));
  EXPECT_EQ(v.at("trace").at("trace_id").number,
            std::to_string(t.trace_id()));
}

TEST(SlowQueryLogTest, EntriesCarryProtocolPeerAndWireTrace) {
  SlowQueryLog log(/*capacity=*/8);
  log.SetThresholdMicros(0);
  TraceContext t;
  t.SetWireTrace(0x0123456789abcdefULL, 0xfedcba9876543210ULL, 42);
  t.Begin("server.request");
  t.SetAttr("protocol", "tsp1");
  t.SetAttr("peer", "127.0.0.1:5555");
  t.End();
  log.Record(t, "CURRENT samples");
  ASSERT_EQ(log.Entries().size(), 1u);
  const SlowQueryEntry entry = log.Entries()[0];
  EXPECT_EQ(entry.protocol, "tsp1");
  EXPECT_EQ(entry.peer, "127.0.0.1:5555");
  EXPECT_EQ(entry.wire_trace, "0123456789abcdeffedcba9876543210");
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v, JsonParser::Parse(entry.ToJson()));
  EXPECT_EQ(v.at("protocol").string, "tsp1");
  EXPECT_EQ(v.at("peer").string, "127.0.0.1:5555");
  EXPECT_EQ(v.at("wire_trace").string, "0123456789abcdeffedcba9876543210");
}

TEST(SlowQueryLogTest, LocalEntriesOmitWireFields) {
  // A span recorded by in-process execution (no network server, no
  // propagated trace) keeps its JSON line free of the wire keys entirely —
  // absent, not empty strings.
  SlowQueryLog log(/*capacity=*/8);
  log.SetThresholdMicros(0);
  TraceContext t;
  MakeSpan("query.current", &t);
  log.Record(t, "CURRENT samples");
  ASSERT_EQ(log.Entries().size(), 1u);
  EXPECT_TRUE(log.Entries()[0].protocol.empty());
  EXPECT_TRUE(log.Entries()[0].wire_trace.empty());
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       JsonParser::Parse(log.Entries()[0].ToJson()));
  EXPECT_FALSE(v.has("protocol"));
  EXPECT_FALSE(v.has("peer"));
  EXPECT_FALSE(v.has("wire_trace"));
}

TEST(SlowQueryLogTest, ClearResetsRingAndSequence) {
  SlowQueryLog log(/*capacity=*/2);
  log.SetThresholdMicros(0);
  TraceContext t;
  MakeSpan("query.current", &t);
  log.Record(t, "stmt");
  log.Clear();
  EXPECT_EQ(log.TotalRecorded(), 0u);
  EXPECT_TRUE(log.Entries().empty());
}

TEST(SlowQueryLogTest, RecordEndsAnOpenSpan) {
  SlowQueryLog log(/*capacity=*/2);
  log.SetThresholdMicros(0);
  TraceContext t;
  t.Begin("query.current");  // deliberately not ended
  log.Record(t, "stmt");
  ASSERT_EQ(log.Entries().size(), 1u);
  ASSERT_OK(testing::ValidJson(log.Entries()[0].trace_json));
}

}  // namespace
}  // namespace tempspec
