#include "net/frame.h"

#include <cstring>

#include "storage/serde.h"

namespace tempspec {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

bool IsValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kRejected);
}

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string payload;
  payload.reserve((frame.has_deadline() ? 8 : 0) +
                  (frame.has_trace() ? kFrameTracePrefixBytes : 0) +
                  frame.payload.size());
  if (frame.has_deadline()) PutU64(&payload, frame.deadline_millis);
  if (frame.has_trace()) {
    PutU64(&payload, frame.trace_hi);
    PutU64(&payload, frame.trace_lo);
    PutU64(&payload, frame.span_id);
  }
  payload += frame.payload;

  out->reserve(out->size() + kFrameHeaderBytes + payload.size());
  PutU32(out, kFrameMagic);
  out->push_back(static_cast<char>(frame.type));
  out->push_back(static_cast<char>(frame.flags));
  PutU16(out, 0);  // reserved
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  *out += payload;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!poisoned_.ok()) return poisoned_;
  // Compact once the consumed prefix dominates, amortized O(1) per byte.
  if (offset_ > 4096 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  if (buffer_.size() - offset_ < kFrameHeaderBytes) {
    return std::optional<Frame>(std::nullopt);
  }
  const char* header = buffer_.data() + offset_;
  const uint32_t magic = GetU32(header);
  if (magic != kFrameMagic) {
    poisoned_ = Status::InvalidArgument("bad frame magic 0x",
                                        std::hex, magic);
    return poisoned_;
  }
  const uint8_t type = static_cast<uint8_t>(header[4]);
  const uint8_t flags = static_cast<uint8_t>(header[5]);
  const uint16_t reserved = GetU16(header + 6);
  const uint32_t payload_len = GetU32(header + 8);
  const uint32_t payload_crc = GetU32(header + 12);
  if (!IsValidFrameType(type)) {
    poisoned_ = Status::InvalidArgument("unknown frame type ",
                                        static_cast<int>(type));
    return poisoned_;
  }
  if ((flags & ~(kFrameFlagDeadline | kFrameFlagTrace)) != 0) {
    poisoned_ = Status::InvalidArgument("unknown frame flags ",
                                        static_cast<int>(flags));
    return poisoned_;
  }
  if (reserved != 0) {
    poisoned_ = Status::InvalidArgument("nonzero reserved frame bits");
    return poisoned_;
  }
  if (payload_len > max_payload_bytes_) {
    poisoned_ = Status::InvalidArgument("frame payload of ", payload_len,
                                        " bytes exceeds the ",
                                        max_payload_bytes_, "-byte cap");
    return poisoned_;
  }
  const bool has_deadline = (flags & kFrameFlagDeadline) != 0;
  const bool has_trace = (flags & kFrameFlagTrace) != 0;
  const size_t prefix_len =
      (has_deadline ? 8 : 0) + (has_trace ? kFrameTracePrefixBytes : 0);
  if (payload_len < prefix_len) {
    poisoned_ = Status::InvalidArgument(
        "flags 0x", std::hex, static_cast<int>(flags), " need a ", std::dec,
        prefix_len, "-byte prefix but the payload is only ", payload_len,
        " bytes");
    return poisoned_;
  }
  if (buffer_.size() - offset_ < kFrameHeaderBytes + payload_len) {
    return std::optional<Frame>(std::nullopt);  // truncated so far
  }
  const char* payload = header + kFrameHeaderBytes;
  if (Crc32(std::string_view(payload, payload_len)) != payload_crc) {
    poisoned_ = Status::Corruption("frame payload CRC mismatch");
    return poisoned_;
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = flags;
  const char* body = payload;
  if (has_deadline) {
    frame.deadline_millis = GetU64(body);
    body += 8;
  }
  if (has_trace) {
    frame.trace_hi = GetU64(body);
    frame.trace_lo = GetU64(body + 8);
    frame.span_id = GetU64(body + 16);
    body += kFrameTracePrefixBytes;
  }
  frame.payload.assign(body, payload_len - prefix_len);
  offset_ += kFrameHeaderBytes + payload_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace tempspec
