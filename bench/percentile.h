// The one percentile implementation shared by everything that reports
// latency distributions: the bench binaries' --json capture
// (bench_common.h / bench_json.h), bench_p3_server's latency counters, and
// the traffic simulator's per-tenant SLO tracking (tools/tempspec_simulate).
// Header-only and dependency-free on purpose — tests include it without
// linking google-benchmark or the engine.
//
// Semantics: nearest-rank on the sorted sample with round-half-up on the
// fractional rank p * (n - 1). Edge cases are total, not UB: an empty
// sample yields 0, a single sample is every percentile of itself, and tied
// values behave like any other values (ranks index the sorted multiset).
#ifndef TEMPSPEC_BENCH_PERCENTILE_H_
#define TEMPSPEC_BENCH_PERCENTILE_H_

#include <algorithm>
#include <vector>

namespace tempspec {
namespace bench {

/// \brief Upper-index percentile over a sample (nearest-rank). Takes the
/// sample by value and sorts it; callers keep their own copy when they need
/// insertion order preserved.
inline double SamplePercentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t idx = static_cast<size_t>(rank + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace bench
}  // namespace tempspec

#endif  // TEMPSPEC_BENCH_PERCENTILE_H_
