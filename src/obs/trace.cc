#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

namespace tempspec {

namespace {
uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
             .count()));
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

void TraceContext::Begin(std::string name) {
  if (started_ && !ended_) {
    ++nest_depth_;
    SetAttr("inner_span", std::move(name));
    return;
  }
  name_ = std::move(name);
  trace_id_ = NextTraceId();
  nest_depth_ = 0;
  started_ = true;
  ended_ = false;
  wall_micros_ = 0;
  start_ = std::chrono::steady_clock::now();
}

void TraceContext::End() {
  if (!started_ || ended_) return;
  if (nest_depth_ > 0) {
    --nest_depth_;
    return;
  }
  ended_ = true;
  wall_micros_ = MicrosSince(start_);
}

void TraceContext::SetWireTrace(uint64_t hi, uint64_t lo,
                                uint64_t parent_span_id) {
  wire_trace_hi_ = hi;
  wire_trace_lo_ = lo;
  parent_span_id_ = parent_span_id;
  wire_trace_set_ = true;
}

std::string TraceContext::WireTraceId() const {
  if (!wire_trace_set_) return "";
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(wire_trace_hi_),
                static_cast<unsigned long long>(wire_trace_lo_));
  return std::string(buf);
}

void TraceContext::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

void TraceContext::AddCounter(const std::string& key, uint64_t n) {
  for (auto& [k, v] : counters_) {
    if (k == key) {
      v += n;
      return;
    }
  }
  counters_.emplace_back(key, n);
}

uint64_t TraceContext::counter(const std::string& key) const {
  for (const auto& [k, v] : counters_) {
    if (k == key) return v;
  }
  return 0;
}

const std::string& TraceContext::attr(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return kEmpty;
}

void TraceContext::AddStage(std::string name, uint64_t micros) {
  stages_.push_back(TraceStage{std::move(name), micros});
}

void TraceContext::ArmDeadline(std::chrono::steady_clock::time_point deadline) {
  deadline_nanos_.store(
      deadline.time_since_epoch() == std::chrono::steady_clock::duration::zero()
          ? 0
          : std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline.time_since_epoch())
                .count(),
      std::memory_order_release);
}

void TraceContext::ArmDeadlineAfterMicros(uint64_t micros) {
  if (micros == 0) {
    deadline_nanos_.store(0, std::memory_order_release);
    return;
  }
  ArmDeadline(std::chrono::steady_clock::now() +
              std::chrono::microseconds(micros));
}

bool TraceContext::CancellationRequested() const {
  if (cancel_.load(std::memory_order_acquire)) return true;
  const int64_t deadline = deadline_nanos_.load(std::memory_order_acquire);
  if (deadline == 0) return false;
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  if (now < deadline) return false;
  // Latch: once a deadline has passed the query stays cancelled even if the
  // clock is read again (and later polls skip the clock read entirely).
  const_cast<TraceContext*>(this)->cancel_.store(true,
                                                 std::memory_order_release);
  return true;
}

TraceContext::StageScope::StageScope(TraceContext* ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {
  if (ctx_ != nullptr) start_ = std::chrono::steady_clock::now();
}

TraceContext::StageScope::~StageScope() {
  if (ctx_ != nullptr) ctx_->AddStage(std::move(name_), MicrosSince(start_));
}

std::string TraceContext::ToJson() const {
  // A span being serialized is done; finalize the clock without forcing
  // every caller to remember End().
  const_cast<TraceContext*>(this)->End();

  std::string out = "{\"span\":\"" + JsonEscape(name_) + "\"";
  out += ",\"trace_id\":" + std::to_string(trace_id_);
  if (wire_trace_set_) {
    char span_hex[17];
    std::snprintf(span_hex, sizeof(span_hex), "%016llx",
                  static_cast<unsigned long long>(parent_span_id_));
    out += ",\"wire_trace\":\"" + WireTraceId() + "\"";
    out += ",\"parent_span\":\"" + std::string(span_hex) + "\"";
  }
  out += ",\"wall_micros\":" + std::to_string(wall_micros_);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : attrs_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":" + std::to_string(v);
  }
  out += "},\"stages\":[";
  first = true;
  for (const TraceStage& s : stages_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) +
           "\",\"micros\":" + std::to_string(s.micros) + "}";
  }
  out += "]}";
  return out;
}

RetainedTraces& RetainedTraces::Instance() {
  static RetainedTraces* traces = new RetainedTraces();  // process lifetime
  return *traces;
}

void RetainedTraces::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<ptrdiff_t>(ring_.size() - capacity_));
  }
}

size_t RetainedTraces::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void RetainedTraces::SetSampleEvery(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_every_ = n;
}

uint64_t RetainedTraces::sample_every() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_every_;
}

void RetainedTraces::ConfigureFromEnv() {
  if (const char* v = std::getenv("TEMPSPEC_TRACE_CAPACITY")) {
    if (*v != '\0') {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end != v && parsed > 0) SetCapacity(static_cast<size_t>(parsed));
    }
  }
  if (const char* v = std::getenv("TEMPSPEC_TRACE_SAMPLE")) {
    if (*v != '\0') {
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(v, &end, 10);
      if (end != v) SetSampleEvery(static_cast<uint64_t>(parsed));
    }
  }
}

void RetainedTraces::Record(TraceContext& trace) {
  if (!trace.started()) return;
  trace.End();
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  if (sample_every_ == 0 || (seen_ - 1) % sample_every_ != 0) return;
  if (capacity_ == 0) return;
  RetainedTrace entry;
  entry.trace_id = trace.trace_id();
  entry.unix_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  entry.span = trace.name();
  entry.json = trace.ToJson();
  if (ring_.size() >= capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() +
                    static_cast<ptrdiff_t>(ring_.size() - capacity_ + 1));
  }
  ring_.push_back(std::move(entry));
  ++retained_;
}

std::vector<RetainedTrace> RetainedTraces::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

uint64_t RetainedTraces::TotalSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

uint64_t RetainedTraces::TotalRetained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

void RetainedTraces::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  seen_ = 0;
  retained_ = 0;
}

}  // namespace tempspec
