// Archaeology: a non-increasing interval relation, plus bitemporal
// corrections and rollback on a companion catalog.
//
// The paper's non-increasing example: "an archeological relation that
// records information about progressively earlier periods uncovered as
// excavation proceeds." Part 1 shows the dig log's inter-interval
// constraints at work (including why they forbid restating an old stratum —
// the intensional definitions quantify over the whole extension). Part 2
// keeps the finds catalog as a *general* bitemporal relation, corrects a
// mis-dated find with Modify, and audits both beliefs with rollback /
// as-of queries.
#include <iostream>

#include "query/executor.h"
#include "timex/calendar.h"
#include "workload/workloads.h"

using namespace tempspec;

int main() {
  // -- Part 1: the constrained dig log.
  WorkloadConfig config;
  config.num_objects = 4;      // excavation squares
  config.ops_per_object = 12;  // strata per square
  auto scenario = MakeArchaeology(config).ValueOrDie();
  GenerateArchaeology(config, &scenario).Check();
  TemporalRelation& dig = *scenario.relation;

  std::cout << "Dig log: " << dig.size() << " strata\n";
  std::cout << "Declared:\n" << dig.specializations().ToString() << "\n";

  // Excavation only moves backwards in time: a stratum dated later than the
  // last one is rejected.
  const Element& deepest = dig.elements()[dig.size() - 1];
  auto bad = dig.InsertInterval(
      1, deepest.valid.end() + Duration::Days(365),
      deepest.valid.end() + Duration::Days(2 * 365), Tuple{int64_t{1}, 3});
  std::cout << "Recording a stratum from a LATER period:\n  "
            << bad.status().ToString() << "\n";

  // Even re-stating an already-recorded stratum violates the chain: the
  // sti-meets property is intensional over the whole extension.
  const Element mid = dig.elements()[5];
  auto restate = dig.Modify(mid.element_surrogate, mid.valid,
                            Tuple{mid.attributes.at(0), int64_t{99}});
  std::cout << "Re-stating stratum " << mid.element_surrogate << ":\n  "
            << restate.status().ToString() << "\n\n";

  // -- Part 2: the finds catalog (general bitemporal relation) supports
  // corrections, and rollback audits them.
  RelationOptions options;
  options.schema =
      Schema::Make("finds",
                   {AttributeDef{"square", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"period", ValueType::kString,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kInterval, Granularity::Day())
          .ValueOrDie();
  auto clock = std::make_shared<LogicalClock>(
      FromCivil(CivilDateTime{1992, 2, 3, 0, 0, 0, 0}), Duration::Hours(1));
  options.clock = clock;
  auto finds = TemporalRelation::Open(std::move(options)).ValueOrDie();

  const TimePoint bronze_b = FromCivil(CivilDateTime{-1200, 1, 1, 0, 0, 0, 0});
  const TimePoint bronze_e = FromCivil(CivilDateTime{-800, 1, 1, 0, 0, 0, 0});
  const ElementSurrogate find_id =
      finds->InsertInterval(3, bronze_b, bronze_e, Tuple{int64_t{3}, "bronze age"})
          .ValueOrDie();
  finds->InsertInterval(1, bronze_e, FromCivil(CivilDateTime{-300, 1, 1, 0, 0, 0, 0}),
                        Tuple{int64_t{1}, "iron age"})
        .ValueOrDie();

  const TimePoint before_correction = finds->LastTransactionTime();

  // Radiocarbon results arrive: the find is 200 years younger than thought.
  const ElementSurrogate corrected =
      finds->Modify(find_id,
                    ValidTime::IntervalUnchecked(bronze_b + Duration::Years(200),
                                                 bronze_e + Duration::Years(200)),
                    Tuple{int64_t{3}, "late bronze age"})
          .ValueOrDie();

  QueryExecutor exec(*finds);
  std::cout << "Find #" << find_id << " corrected to element #" << corrected
            << " after radiocarbon dating.\n";
  auto believed_then = exec.Rollback(before_correction);
  auto believed_now = exec.Current();
  for (const Element& e : believed_then) {
    if (e.object_surrogate == 3) {
      std::cout << "  believed then: " << e.attributes.at(1).ToString() << " "
                << e.valid.ToString() << "\n";
    }
  }
  for (const Element& e : believed_now) {
    if (e.object_surrogate == 3) {
      std::cout << "  believed now:  " << e.attributes.at(1).ToString() << " "
                << e.valid.ToString() << "\n";
    }
  }
  std::cout << "Nothing was lost: " << finds->size()
            << " elements retained across " << believed_now.size()
            << " current facts.\n";
  return 0;
}
