// Embedded telemetry exporter: the operable face of the metrics registry.
//
// PR 4 gave the engine an in-process registry; this module makes it
// scrapeable without linking any HTTP library. A TelemetryExporter wraps a
// NetServer (net/server.h) — the same event-loop HTTP stack the query
// daemon uses, with its request-line/header/body limits and concurrent
// connection handling — bound to a loopback/interface address, serving:
//
//   /metrics       — the registry rendered in Prometheus text exposition
//                    format (counters, gauges, and the log2 histograms as
//                    cumulative `_bucket{le="..."}` series, `_sum`/`_count`)
//   /varz          — {"build": BuildConfigJson(), "metrics": registry JSON
//                    snapshot}: the build-config stamp plus the metrics, so
//                    live processes are never compared across unlike trees
//   /healthz       — "ok" (liveness; serves even when the registry is empty)
//   /debug/events  — the flight-recorder ring as JSONL (obs/flight_recorder.h)
//   /debug/traces  — the retained trace spans as JSONL (obs/trace.h)
//   /debug/health  — declared SLOs re-evaluated now, as JSON (obs/slo.h)
//   /metrics/history — the metrics time-series ring as JSONL (obs/history.h)
//
// For headless runs (benches, batch jobs) the exporter can also append a
// periodic JSONL snapshot line to a file, so a run leaves a scrape history
// behind even when nothing polled it.
//
// Compile-out contract: the exporter itself is control-plane code — it is
// only ever started explicitly (or via MaybeStartFromEnv), costs nothing
// when not running, and compiles in every tree so tools and tests work
// regardless of TEMPSPEC_METRICS. In an OFF tree a scrape simply renders
// the empty registry; the hot-path instrumentation is what compiles out.
#ifndef TEMPSPEC_OBS_EXPORTER_H_
#define TEMPSPEC_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/result.h"

namespace tempspec {

/// \brief Rewrites a registry metric name into the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character (the registry's dots
/// included) becomes '_', and a leading digit gains a '_' prefix.
std::string SanitizeMetricName(const std::string& name);

/// \brief Renders a scrape in the Prometheus text exposition format: one
/// `# HELP` + `# TYPE` header per metric, counters/gauges as single samples,
/// histograms as cumulative `_bucket{le="..."}` series (log2 upper bounds,
/// closed by `le="+Inf"`) plus `_sum` and `_count`.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// \brief Renders the labeled per-query latency family as one
/// `tempspec_query_latency` histogram per {relation, kind, protocol} series
/// (cumulative `_bucket{...,le="..."}` plus labeled `_sum`/`_count`). The
/// /metrics endpoint appends this after the registry text.
std::string RenderLabeledPrometheusText(
    const std::vector<LabeledSeries>& series);

/// \brief Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value);

/// \brief Construction options for the exporter.
struct ExporterOptions {
  /// Interface to bind; loopback by default (expose deliberately).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 9464;  // the conventional Prometheus exporter range
  /// When non-empty, a writer thread appends one JSONL line
  /// {"unix_micros":...,"metrics":{...}} to this path every period.
  std::string snapshot_path;
  uint64_t snapshot_period_ms = 10000;
};

/// \brief Serves the metrics registry over HTTP until stopped. One instance
/// per process is typical; nothing enforces that. Thread-safe: Start/Stop
/// may race with scrapes (the server thread only reads the registry).
class TelemetryExporter {
 public:
  explicit TelemetryExporter(ExporterOptions options = {});
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// \brief Binds, listens, and starts the server (and, when configured,
  /// the snapshot writer) thread. Fails on bind/listen errors (port in
  /// use, bad address) and on double Start.
  Status Start();

  /// \brief Stops the threads and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief The bound port (resolves port 0 after Start).
  uint16_t port() const { return bound_port_.load(std::memory_order_acquire); }

  const ExporterOptions& options() const { return options_; }

  /// \brief Environment activation for embedding binaries (examples,
  /// benches): when TEMPSPEC_EXPORTER_PORT is set, starts an exporter on
  /// that port (0 = ephemeral) and returns it; otherwise returns null.
  /// Honors TEMPSPEC_EXPORTER_ADDR (bind address), TEMPSPEC_EXPORTER_PORTFILE
  /// (writes the bound port to this path — how scripts find an ephemeral
  /// port), TEMPSPEC_EXPORTER_SNAPSHOT and TEMPSPEC_EXPORTER_SNAPSHOT_MS
  /// (periodic JSONL writer). Also applies SlowQueryLog::ConfigureFromEnv()
  /// so one call turns a binary into a full telemetry endpoint. On Start
  /// failure prints to stderr and returns null (telemetry must never take
  /// the host process down).
  static std::unique_ptr<TelemetryExporter> MaybeStartFromEnv();

  /// \brief Blocks for TEMPSPEC_EXPORTER_LINGER_MS milliseconds (0/unset =
  /// returns immediately). Embedding binaries call this last so a smoke
  /// script can scrape a process that would otherwise exit instantly.
  static void LingerFromEnv();

 private:
  void WriteSnapshots();

  ExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint16_t> bound_port_{0};
  std::unique_ptr<class NetServer> server_;
  std::thread snapshot_thread_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_EXPORTER_H_
