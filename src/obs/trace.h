// Per-query trace spans.
//
// A TraceContext is attached to one query execution (via ExecutorOptions) and
// records what the metrics registry can only aggregate: which plan the
// optimizer chose for *this* query, how many elements it examined vs
// returned, how many buffer-pool pages it touched, and how long each stage
// took. query_lang's EXPLAIN ANALYZE surfaces the span as single-line JSON.
//
// Unlike the TS_* metric macros, tracing is a runtime opt-in rather than a
// compile-time one: a query with no attached context pays only a null-pointer
// check, so the span machinery is always compiled in and works in
// TEMPSPEC_METRICS=OFF trees too.
#ifndef TEMPSPEC_OBS_TRACE_H_
#define TEMPSPEC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tempspec {

/// \brief One recorded stage of a span: (name, wall micros).
struct TraceStage {
  std::string name;
  uint64_t micros = 0;
};

/// \brief A single query's trace span. Not thread-safe: one context belongs
/// to one query execution, and the executor records into it only from the
/// calling thread (per-morsel work aggregates through QueryStats first).
class TraceContext {
 public:
  TraceContext() = default;

  /// \brief Starts the span clock and names it (e.g. "query.timeslice").
  void Begin(std::string name);
  /// \brief Stops the span clock. Idempotent; ToJson() calls it if needed.
  void End();

  bool started() const { return started_; }
  const std::string& name() const { return name_; }
  uint64_t wall_micros() const { return wall_micros_; }

  /// \brief Sets a string attribute (last write wins), e.g. plan strategy.
  void SetAttr(const std::string& key, std::string value);
  /// \brief Adds to a numeric counter, e.g. elements_examined.
  void AddCounter(const std::string& key, uint64_t n);
  /// \brief Counter value, 0 when absent.
  uint64_t counter(const std::string& key) const;
  /// \brief Attribute value, "" when absent.
  const std::string& attr(const std::string& key) const;

  /// \brief Records a completed stage duration.
  void AddStage(std::string name, uint64_t micros);
  const std::vector<TraceStage>& stages() const { return stages_; }

  /// \brief RAII stage timer: times from construction to destruction and
  /// appends a TraceStage. Safe with a null context (no-op).
  class StageScope {
   public:
    StageScope(TraceContext* ctx, std::string name);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    TraceContext* ctx_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// \brief Single-line JSON:
  /// {"span":"query.timeslice","wall_micros":N,
  ///  "attrs":{"strategy":"valid_index",...},
  ///  "counters":{"elements_examined":N,...},
  ///  "stages":[{"name":"plan","micros":N},...]}
  std::string ToJson() const;

 private:
  std::string name_;
  bool started_ = false;
  bool ended_ = false;
  std::chrono::steady_clock::time_point start_;
  uint64_t wall_micros_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::pair<std::string, uint64_t>> counters_;
  std::vector<TraceStage> stages_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_TRACE_H_
