// Machine-readable bench output: every bench binary accepts `--json [path]`
// and writes a BENCH_<id>.json result file (schema below) so the perf
// trajectory can be tracked across commits by tools/check_bench_json.py.
//
// Schema (schema_version 2, single JSON object per file):
//   {
//     "schema_version": 2,
//     "bench_id": "e2_degenerate",
//     "params": {"threads": N, "metrics_enabled": 0|1,
//                "failpoints_enabled": 0|1, "flightrecorder_enabled": 0|1,
//                "sanitizers": ""|"thread"|"address",
//                "compiler": "<__VERSION__ of the building compiler>"},
//     "benchmarks": [
//       {"name": "...", "runs": N, "iterations": N,
//        "real_time_ns_median": X, "real_time_ns_p99": X,
//        "counters": {"examined": X, ...}},
//       ...
//     ],
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
//   }
//
// The metrics object is the engine's registry snapshot at exit — empty maps
// in a TEMPSPEC_METRICS=OFF tree, which the smoke check treats as valid.
#ifndef TEMPSPEC_BENCH_BENCH_JSON_H_
#define TEMPSPEC_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/build_info.h"
#include "obs/metrics.h"
#include "percentile.h"
#include "util/thread_pool.h"

namespace tempspec {
namespace bench {

/// \brief One benchmark's aggregated result across its repetitions.
struct BenchResult {
  std::string name;
  uint64_t runs = 0;
  uint64_t iterations = 0;  // summed over runs
  double real_time_ns_median = 0;
  double real_time_ns_p99 = 0;
  std::map<std::string, double> counters;
};

inline std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// \brief Serializes the result file (single line; schema above).
inline std::string BenchResultsToJson(const std::string& bench_id,
                                      const std::vector<BenchResult>& results) {
  std::string out = "{\"schema_version\":2";
  out += ",\"bench_id\":\"" + JsonEscape(bench_id) + "\"";
  // The full build configuration rides along with every result file: perf
  // numbers are only comparable between identically-configured trees, and
  // a sanitized, metrics-OFF, or flight-recorder-OFF run must be
  // distinguishable after the fact. The stamp is spliced from
  // BuildConfigJson() so /varz and the bench files share one source of
  // truth (params stays a flat object for check_bench_json.py).
  out += ",\"params\":{\"threads\":" +
         std::to_string(ThreadPool::DefaultThreadCount()) + "," +
         BuildConfigJson().substr(1);
  out += ",\"benchmarks\":[";
  bool first = true;
  for (const BenchResult& r : results) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(r.name) + "\"";
    out += ",\"runs\":" + std::to_string(r.runs);
    out += ",\"iterations\":" + std::to_string(r.iterations);
    out += ",\"real_time_ns_median\":" + FormatDouble(r.real_time_ns_median);
    out += ",\"real_time_ns_p99\":" + FormatDouble(r.real_time_ns_p99);
    out += ",\"counters\":{";
    bool cfirst = true;
    for (const auto& [k, v] : r.counters) {
      if (!cfirst) out += ",";
      cfirst = false;
      out += "\"" + JsonEscape(k) + "\":" + FormatDouble(v);
    }
    out += "}}";
  }
  // Recorded before the scrape so a metrics-ON tree always carries at least
  // one counter in its report — the smoke check uses that as an end-to-end
  // proof that the registry pipeline works, even for benches whose workload
  // never crosses an instrumented engine path.
  TS_COUNTER_ADD("bench.reports_written", 1);
  out += "],\"metrics\":" + MetricsRegistry::Instance().Scrape().ToJson();
  out += "}";
  return out;
}

/// \brief Extracts `--json [path]` from argv (benchmark::Initialize rejects
/// unknown flags). Returns true when present; `path` defaults to
/// BENCH_<id>.json in the working directory.
inline bool ExtractJsonFlag(int* argc, char** argv, const std::string& id,
                            std::string* path) {
  *path = "BENCH_" + id + ".json";
  bool found = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    std::string_view arg(argv[r]);
    if (arg == "--json") {
      found = true;
      if (r + 1 < *argc && argv[r + 1][0] != '-') *path = argv[++r];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      found = true;
      *path = std::string(arg.substr(std::strlen("--json=")));
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

/// \brief Writes the result file; returns false (with a stderr note) on IO
/// failure so bench main() can exit nonzero.
inline bool WriteBenchJson(const std::string& path, const std::string& bench_id,
                           const std::vector<BenchResult>& results) {
  const std::string json = BenchResultsToJson(bench_id, results);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write bench json '%s'\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write on bench json '%s'\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace tempspec

#endif  // TEMPSPEC_BENCH_BENCH_JSON_H_
