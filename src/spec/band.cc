#include "spec/band.h"

namespace tempspec {

namespace {

// Range of microseconds a duration can denote, over all anchor instants.
// Calendar months span 28..31 days.
struct MicrosRange {
  int64_t lo;
  int64_t hi;
};

MicrosRange RangeOf(Duration d) {
  constexpr int64_t kMinMonth = 28 * kMicrosPerDay;
  constexpr int64_t kMaxMonth = 31 * kMicrosPerDay;
  const int64_t m = d.months();
  MicrosRange r{d.micros(), d.micros()};
  if (m >= 0) {
    r.lo += m * kMinMonth;
    r.hi += m * kMaxMonth;
  } else {
    r.lo += m * kMaxMonth;
    r.hi += m * kMinMonth;
  }
  return r;
}

}  // namespace

std::optional<int> CompareOffsets(Duration a, Duration b) {
  if (a == b) return 0;
  if (a.IsFixed() && b.IsFixed()) {
    return a.micros() < b.micros() ? -1 : (a.micros() > b.micros() ? 1 : 0);
  }
  const MicrosRange ra = RangeOf(a);
  const MicrosRange rb = RangeOf(b);
  if (ra.hi < rb.lo) return -1;
  if (rb.hi < ra.lo) return 1;
  return std::nullopt;
}

bool Band::Contains(TimePoint tt, TimePoint vt) const {
  if (lower_) {
    const TimePoint anchor = tt + lower_->offset;
    if (lower_->open ? !(vt > anchor) : !(vt >= anchor)) return false;
  }
  if (upper_) {
    const TimePoint anchor = tt + upper_->offset;
    if (upper_->open ? !(vt < anchor) : !(vt <= anchor)) return false;
  }
  return true;
}

std::optional<bool> Band::IsEmpty() const {
  if (!lower_ || !upper_) return false;
  auto cmp = CompareOffsets(lower_->offset, upper_->offset);
  if (!cmp) return std::nullopt;
  if (*cmp > 0) return true;
  if (*cmp == 0) return lower_->open || upper_->open;
  return false;
}

std::optional<bool> Band::SubsetOf(const Band& other) const {
  // this ⊆ other iff other's lower is at/below ours and other's upper is
  // at/above ours, with openness respected.
  auto lower_ok = [&]() -> std::optional<bool> {
    if (!other.lower_) return true;
    if (!lower_) return false;
    auto cmp = CompareOffsets(other.lower_->offset, lower_->offset);
    if (!cmp) return std::nullopt;
    if (*cmp < 0) return true;
    if (*cmp > 0) return false;
    // Equal offsets: an open outer bound excludes the line a closed inner
    // bound includes.
    return !(other.lower_->open && !lower_->open);
  }();
  auto upper_ok = [&]() -> std::optional<bool> {
    if (!other.upper_) return true;
    if (!upper_) return false;
    auto cmp = CompareOffsets(upper_->offset, other.upper_->offset);
    if (!cmp) return std::nullopt;
    if (*cmp < 0) return true;
    if (*cmp > 0) return false;
    return !(other.upper_->open && !upper_->open);
  }();
  if (lower_ok.has_value() && !*lower_ok) return false;
  if (upper_ok.has_value() && !*upper_ok) return false;
  if (!lower_ok || !upper_ok) return std::nullopt;
  return true;
}

Band Band::Intersect(const Band& other) const {
  Band out = *this;
  auto tighter_lower = [](const BandBound& a, const BandBound& b) {
    auto cmp = CompareOffsets(a.offset, b.offset);
    if (!cmp) return a;  // incomparable: keep ours (conservative)
    if (*cmp > 0) return a;
    if (*cmp < 0) return b;
    return BandBound{a.offset, a.open || b.open};
  };
  auto tighter_upper = [](const BandBound& a, const BandBound& b) {
    auto cmp = CompareOffsets(a.offset, b.offset);
    if (!cmp) return a;
    if (*cmp < 0) return a;
    if (*cmp > 0) return b;
    return BandBound{a.offset, a.open || b.open};
  };
  if (other.lower_) {
    out.lower_ = out.lower_ ? tighter_lower(*out.lower_, *other.lower_)
                            : *other.lower_;
  }
  if (other.upper_) {
    out.upper_ = out.upper_ ? tighter_upper(*out.upper_, *other.upper_)
                            : *other.upper_;
  }
  return out;
}

std::string Band::ToString() const {
  std::string out;
  auto fmt = [](Duration d) {
    std::string s = d.ToString();
    if (!s.empty() && s[0] != '-') s = "+" + s;
    return s;
  };
  if (lower_) {
    out += lower_->open ? "(" : "[";
    out += fmt(lower_->offset);
  } else {
    out += "(-inf";
  }
  out += ", ";
  if (upper_) {
    out += fmt(upper_->offset);
    out += upper_->open ? ")" : "]";
  } else {
    out += "+inf)";
  }
  return out;
}

}  // namespace tempspec
