// End-to-end gate for the seven-tenant traffic simulator: runs the shipped
// tools/tempspec_simulate binary in seeded op-capped mode — all seven
// tenants over HTTP + TSP1 against a spawned tempspec_serve, with the
// hostile drift and SIGKILL-at-peak-load scenarios on — and requires a
// clean exit (the binary itself asserts the DRIFTED flip, post-crash write
// durability, and client/server reconciliation). The emitted
// BENCH_p4_simulator.json must pass the same tools/check_bench_json.py
// validator CI uses. Registered under `ctest -L simulator`.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#ifndef TEMPSPEC_SIMULATE_BIN
#error "build injects TEMPSPEC_SIMULATE_BIN=$<TARGET_FILE:tempspec_simulate>"
#endif
#ifndef TEMPSPEC_SERVE_BIN
#error "build injects TEMPSPEC_SERVE_BIN=$<TARGET_FILE:tempspec_serve>"
#endif
#ifndef TEMPSPEC_TOOLS_DIR
#error "build injects TEMPSPEC_TOOLS_DIR=<source>/tools"
#endif

namespace tempspec {
namespace {

std::string MakeTempDir() {
  char pattern[] = "/tmp/tempspec_sim_XXXXXX";
  const char* dir = ::mkdtemp(pattern);
  return dir == nullptr ? "" : dir;
}

/// Runs the simulator with `extra_args` and returns its exit code.
int RunSimulator(const std::string& data_dir, const std::string& json_path,
                 const std::vector<std::string>& extra_args) {
  std::vector<std::string> args = {
      TEMPSPEC_SIMULATE_BIN,
      "--serve-bin=" TEMPSPEC_SERVE_BIN,
      "--data-dir=" + data_dir,
      "--json=" + json_path,
  };
  args.insert(args.end(), extra_args.begin(), extra_args.end());
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(TEMPSPEC_SIMULATE_BIN, argv.data());
    _exit(127);
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

TEST(SimulatorTest, SeededHostileRunPassesItsOwnGatesAndTheValidator) {
  const std::string dir = MakeTempDir();
  ASSERT_FALSE(dir.empty());
  const std::string json_path = dir + "/BENCH_p4_simulator.json";

  // Op-capped seeded mode: deterministic statement streams, finishes in a
  // few seconds, still exercises admission-control retries (tiny inflight
  // budget), the mid-run DRIFTED check, and SIGKILL recovery.
  const int exit_code = RunSimulator(
      dir, json_path,
      {"--max-ops=90", "--duration-s=120", "--seed=7", "--max-inflight=2",
       "--think-us=0", "--scenario-drift", "--scenario-crash"});
  ASSERT_EQ(exit_code, 0)
      << "tempspec_simulate failed; rerun it by hand for the FAIL lines";

  // The run's JSON must satisfy the same schema gate CI applies.
  std::ifstream json(json_path);
  ASSERT_TRUE(json.good()) << json_path << " was not written";
  const std::string check = std::string("python3 ") + TEMPSPEC_TOOLS_DIR +
                            "/check_bench_json.py " + json_path;
  EXPECT_EQ(std::system(check.c_str()), 0) << check;

  // Spot-check the scenario evidence the validator doesn't know about.
  std::string contents((std::istreambuf_iterator<char>(json)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"scenario/drift\""), std::string::npos);
  EXPECT_NE(contents.find("\"scenario/crash_recovery\""), std::string::npos);
  for (const char* tenant :
       {"plant_temperatures", "reactor_samples", "payroll_deposits",
        "assignments", "ledger", "orders", "strata"}) {
    EXPECT_NE(contents.find("tenant/" + std::string(tenant)),
              std::string::npos)
        << "missing tenant entry for " << tenant;
  }
}

TEST(SimulatorTest, SameSeedIsReproducibleAcrossRuns) {
  // Determinism gate for the statement streams: two runs with the same
  // seed must ack the same writes and land identical element counts (the
  // JSON's latency fields of course differ; counts must not).
  const std::string dir_a = MakeTempDir();
  const std::string dir_b = MakeTempDir();
  ASSERT_FALSE(dir_a.empty());
  ASSERT_FALSE(dir_b.empty());
  const std::vector<std::string> args = {"--max-ops=60", "--duration-s=120",
                                         "--seed=11", "--think-us=0"};
  ASSERT_EQ(RunSimulator(dir_a, dir_a + "/bench.json", args), 0);
  ASSERT_EQ(RunSimulator(dir_b, dir_b + "/bench.json", args), 0);

  // Compare the acked-write and element-count counters tenant by tenant.
  auto counts = [](const std::string& path) {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::vector<std::string> out;
    for (const char* key :
         {"\"acked_inserts\"", "\"acked_deletes\"", "\"current_count\""}) {
      size_t at = 0;
      while ((at = contents.find(key, at)) != std::string::npos) {
        const size_t colon = contents.find(':', at);
        const size_t end = contents.find_first_of(",}", colon);
        out.push_back(contents.substr(colon + 1, end - colon - 1));
        at = end;
      }
    }
    return out;
  };
  const std::vector<std::string> counts_a = counts(dir_a + "/bench.json");
  const std::vector<std::string> counts_b = counts(dir_b + "/bench.json");
  ASSERT_FALSE(counts_a.empty());
  EXPECT_EQ(counts_a, counts_b);
}

}  // namespace
}  // namespace tempspec
