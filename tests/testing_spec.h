// Shared helpers for the specialization conformance tests: the canonical
// mapping from an EventSpecKind to a concrete EventSpecialization instance
// whose band matches the representative band that EnumerateEventRegions()
// produces for the same deltas.
#ifndef TEMPSPEC_TESTS_TESTING_SPEC_H_
#define TEMPSPEC_TESTS_TESTING_SPEC_H_

#include "spec/event_spec.h"
#include "timex/duration.h"
#include "util/result.h"

namespace tempspec {
namespace testing {

/// \brief Builds the specialization instance for `kind` with the enumeration's
/// representative deltas (`ds` for single bounds, [`ds`, `dl`] for the
/// two-delta types). The returned spec's band must equal the band of the
/// EnumerateEventRegions(ds, dl) region of the same kind — the property tests
/// assert exactly that before relying on it.
inline Result<EventSpecialization> SpecForKind(EventSpecKind kind, Duration ds,
                                               Duration dl) {
  switch (kind) {
    case EventSpecKind::kGeneral:
      return EventSpecialization::General();
    case EventSpecKind::kRetroactive:
      return EventSpecialization::Retroactive();
    case EventSpecKind::kDelayedRetroactive:
      return EventSpecialization::DelayedRetroactive(ds);
    case EventSpecKind::kPredictive:
      return EventSpecialization::Predictive();
    case EventSpecKind::kEarlyPredictive:
      return EventSpecialization::EarlyPredictive(ds);
    case EventSpecKind::kRetroactivelyBounded:
      return EventSpecialization::RetroactivelyBounded(ds);
    case EventSpecKind::kPredictivelyBounded:
      return EventSpecialization::PredictivelyBounded(ds);
    case EventSpecKind::kStronglyRetroactivelyBounded:
      return EventSpecialization::StronglyRetroactivelyBounded(ds);
    case EventSpecKind::kDelayedStronglyRetroactivelyBounded:
      return EventSpecialization::DelayedStronglyRetroactivelyBounded(ds, dl);
    case EventSpecKind::kStronglyPredictivelyBounded:
      return EventSpecialization::StronglyPredictivelyBounded(ds);
    case EventSpecKind::kEarlyStronglyPredictivelyBounded:
      return EventSpecialization::EarlyStronglyPredictivelyBounded(ds, dl);
    case EventSpecKind::kStronglyBounded:
      return EventSpecialization::StronglyBounded(ds, dl);
    case EventSpecKind::kDegenerate:
      return EventSpecialization::Degenerate();
  }
  return Status::InvalidArgument("unknown EventSpecKind");
}

}  // namespace testing
}  // namespace tempspec

#endif  // TEMPSPEC_TESTS_TESTING_SPEC_H_
