// Shared helpers for the experiment benches (EXPERIMENTS.md, E1-E9).
#ifndef TEMPSPEC_BENCH_BENCH_COMMON_H_
#define TEMPSPEC_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "query/executor.h"
#include "spec/inference.h"
#include "workload/workloads.h"

namespace tempspec {
namespace bench {

/// \brief Aborts the benchmark on error — benches must not silently measure
/// failure paths.
inline void Require(const Status& status) { status.Check(); }

template <typename T>
T Require(Result<T> result) {
  result.status().Check();
  return std::move(result).ValueOrDie();
}

/// \brief Workload sized from the benchmark's first range argument
/// (total elements ~= state.range(0)).
inline WorkloadConfig ConfigFor(int64_t total_elements, size_t num_objects = 16) {
  WorkloadConfig config;
  config.num_objects = num_objects;
  config.ops_per_object =
      static_cast<size_t>(total_elements) / (num_objects ? num_objects : 1);
  return config;
}

/// \brief The always-available naive plan.
inline PlanChoice FullScanPlan() {
  return PlanChoice{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
}

/// \brief Publishes accumulated QueryStats as per-iteration counters
/// (examined elements, morsels dispatched, executor wall-clock).
inline void ReportQueryStats(benchmark::State& state, const QueryStats& stats) {
  using benchmark::Counter;
  state.counters["examined"] =
      Counter(static_cast<double>(stats.elements_examined),
              Counter::kAvgIterations);
  state.counters["results"] =
      Counter(static_cast<double>(stats.results), Counter::kAvgIterations);
  state.counters["morsels"] = Counter(
      static_cast<double>(stats.morsels_executed), Counter::kAvgIterations);
  state.counters["query_micros"] = Counter(
      static_cast<double>(stats.elapsed_micros), Counter::kAvgIterations);
}

}  // namespace bench
}  // namespace tempspec

#endif  // TEMPSPEC_BENCH_BENCH_COMMON_H_
