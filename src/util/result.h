// Result<T>: value-or-Status, in the style of arrow::Result.
#ifndef TEMPSPEC_UTIL_RESULT_H_
#define TEMPSPEC_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace tempspec {

/// \brief Holds either a successfully computed T or the Status explaining why
/// no value could be produced.
///
/// Constructing from an OK status is a programming error and is converted to
/// an Internal error so misuse is observable rather than silent.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// \brief The contained value; must not be called on an error result.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) status().Check();
  }

  std::variant<T, Status> repr_;
};

}  // namespace tempspec

// Propagates an error Status from an expression returning Status.
#define TS_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::tempspec::Status _ts_status = (expr);       \
    if (!_ts_status.ok()) return _ts_status;      \
  } while (false)

#define TS_CONCAT_IMPL(x, y) x##y
#define TS_CONCAT(x, y) TS_CONCAT_IMPL(x, y)

// Evaluates an expression returning Result<T>; on success binds the value to
// `lhs`, on failure returns the error Status.
#define TS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  TS_ASSIGN_OR_RETURN_IMPL(TS_CONCAT(_ts_result_, __LINE__), lhs, rexpr)

#define TS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).ValueOrDie()

#endif  // TEMPSPEC_UTIL_RESULT_H_
