// Execution of the three temporal query classes over a TemporalRelation.
//
// Section 1 distinguishes (1) current queries, (2) historical queries (facts
// about the modeled reality — timeslice / valid-time range), and (3)
// rollback queries (the database as stored at a past transaction time). All
// timeslice strategies are interchangeable: they return the same result set;
// only the number of elements examined differs (QueryStats).
//
// Execution engine: every strategy reduces to a scan over a candidate range
// (the whole element array, a transaction-time window, a monotone sub-range,
// or an index probe's position list). Contiguous candidate ranges run a
// branch-free columnar kernel over the relation's StampStore when the plan
// selects one (query/kernels.h); index probes and hand-built baseline plans
// keep the row-at-a-time Element walk. The scan runs morsel-parallel on a
// ThreadPool when the optimizer judges the candidate count worth the
// dispatch cost; matches are collected per-morsel and concatenated in morsel
// order, so parallel and serial execution return byte-identical,
// position-ordered results. Results are zero-copy ResultSets (positions into
// relation.elements()); the std::vector<Element> signatures below are thin
// materializing adapters kept for existing callers.
#ifndef TEMPSPEC_QUERY_EXECUTOR_H_
#define TEMPSPEC_QUERY_EXECUTOR_H_

#include <optional>
#include <vector>

#include "obs/trace.h"
#include "query/optimizer.h"
#include "query/plan.h"
#include "query/result_set.h"
#include "relation/temporal_relation.h"
#include "util/thread_pool.h"

namespace tempspec {

/// \brief Execution knobs for one executor.
struct ExecutorOptions {
  /// Pool for morsel-parallel scans; nullptr forces serial execution.
  /// The default shares the lazily-started process-wide pool.
  ThreadPool* pool = &ThreadPool::Global();
  /// Elements per morsel. Contiguous ranges of this size are the unit of
  /// work distribution; ~64KiB of Elements keeps a morsel cache-resident.
  size_t morsel_size = 4096;
  /// Candidate-count floor for going parallel (the optimizer's cost cutoff;
  /// lowered by tests to force parallel execution at small sizes).
  size_t parallel_cutoff = Optimizer::kParallelCutoff;
  /// Per-query trace span (EXPLAIN ANALYZE). When set, each query records
  /// its plan choice, counters, pages touched, and stage timings into this
  /// context. One context per query: reuse across queries accumulates.
  TraceContext* trace = nullptr;
};

/// \brief Executes temporal queries against one relation.
///
/// Read-only: holds a const reference and only calls const methods of the
/// relation, so any number of executors (and their worker threads) may run
/// concurrently — provided no thread mutates the relation meanwhile (see the
/// concurrent-access contract in relation/temporal_relation.h).
class QueryExecutor {
 public:
  explicit QueryExecutor(const TemporalRelation& relation,
                         ExecutorOptions options = {})
      : relation_(relation),
        optimizer_(relation.specializations(), relation.schema(),
                   [&relation] { return relation.IsDrifted(); }),
        options_(options) {}

  const Optimizer& optimizer() const { return optimizer_; }
  const ExecutorOptions& options() const { return options_; }

  // -- Zero-copy interface ---------------------------------------------------
  // ResultSets view relation.elements(); they are invalidated by any
  // mutation of the relation.

  /// \brief Current query: the present state of the relation.
  ResultSet CurrentSet(QueryStats* stats = nullptr) const;

  /// \brief Rollback query as a position view: elements whose existence
  /// interval contains `tt`, as finally stored (a logically deleted element
  /// appears with its closed tt_end — positions cannot re-open stamps).
  ResultSet RollbackSet(TimePoint tt, QueryStats* stats = nullptr) const;

  /// \brief Historical (timeslice) query: current-belief facts valid at
  /// `vt`. Strategy chosen by the optimizer.
  ResultSet TimesliceSet(TimePoint vt, QueryStats* stats = nullptr) const;

  /// \brief Timeslice with an explicit plan (for baseline measurements).
  ResultSet TimesliceSetWith(const PlanChoice& plan, TimePoint vt,
                             QueryStats* stats = nullptr) const;

  /// \brief Facts whose valid time intersects [lo, hi), current belief.
  ResultSet ValidRangeSet(TimePoint lo, TimePoint hi,
                          QueryStats* stats = nullptr) const;
  ResultSet ValidRangeSetWith(const PlanChoice& plan, TimePoint lo, TimePoint hi,
                              QueryStats* stats = nullptr) const;

  /// \brief Bitemporal query: facts valid at `vt` as believed at transaction
  /// time `tt`. Planned like a timeslice (the optimizer's strategies bound
  /// *insertion* times, which deletion never moves), with the existence
  /// filter ExistsAt(tt) applied on top of the chosen strategy.
  ResultSet TimesliceAsOfSet(TimePoint vt, TimePoint tt,
                             QueryStats* stats = nullptr) const;

  // -- Materializing adapters (pre-ResultSet signatures) ---------------------

  std::vector<Element> Current(QueryStats* stats = nullptr) const;

  /// \brief Rollback query: the state as stored at transaction time `tt`.
  /// Uses the relation's snapshot/differential cache when enabled (replaying
  /// the backlog reproduces open deletion stamps); otherwise materializes
  /// RollbackSet.
  std::vector<Element> Rollback(TimePoint tt, QueryStats* stats = nullptr) const;

  std::vector<Element> Timeslice(TimePoint vt, QueryStats* stats = nullptr) const;
  std::vector<Element> TimesliceWith(const PlanChoice& plan, TimePoint vt,
                                     QueryStats* stats = nullptr) const;
  std::vector<Element> ValidRange(TimePoint lo, TimePoint hi,
                                  QueryStats* stats = nullptr) const;
  std::vector<Element> ValidRangeWith(const PlanChoice& plan, TimePoint lo,
                                      TimePoint hi,
                                      QueryStats* stats = nullptr) const;
  std::vector<Element> TimesliceAsOf(TimePoint vt, TimePoint tt,
                                     QueryStats* stats = nullptr) const;

 private:
  /// \brief Shared core: executes `plan` over the valid range [lo, hi),
  /// filtering by current belief (as_of empty) or by existence at `*as_of`.
  ResultSet ExecutePlan(const PlanChoice& plan, TimePoint lo, TimePoint hi,
                        std::optional<TimePoint> as_of,
                        QueryStats* stats) const;

  /// \brief Shared core of CurrentSet/RollbackSet: full scan with an
  /// existence-only predicate (the existence_columnar kernel;
  /// kCurrentAsOf selects current belief).
  ResultSet ExistenceScan(const char* span_name, int64_t as_of_micros,
                          QueryStats* stats) const;

  /// \brief Collects matching positions from `count` candidates, where
  /// candidate `i` is element position `pos_at(i)` and matches when
  /// `pred(element)`. Morsel-parallel above the optimizer's cutoff;
  /// output is candidate-ordered either way.
  template <typename PosAt, typename Pred>
  std::vector<uint64_t> CollectMatches(size_t count, const PosAt& pos_at,
                                       const Pred& pred,
                                       QueryStats* stats) const;

  /// \brief Columnar counterpart of CollectMatches for *contiguous*
  /// candidate ranges: runs `kernel` (query/kernels.h) over positions
  /// [first, last) of the relation's StampStore, serially or per-morsel
  /// under the same parallel policy. Each morsel's selection bitmap drains
  /// into a private buffer concatenated in morsel order, so results are
  /// byte-identical to the serial kernel and to the row-at-a-time walk.
  /// `as_of_micros` is kCurrentAsOf for current belief.
  std::vector<uint64_t> CollectColumnar(ScanKernel kernel, size_t first,
                                        size_t last, int64_t lo_micros,
                                        int64_t hi_micros, int64_t as_of_micros,
                                        QueryStats* stats) const;

  const TemporalRelation& relation_;
  Optimizer optimizer_;
  ExecutorOptions options_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_EXECUTOR_H_
